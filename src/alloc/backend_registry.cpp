#include "alloc/backend_registry.h"

#include <initializer_list>
#include <stdexcept>

#include "alloc/caching_allocator.h"
#include "alloc/cub_allocator.h"
#include "alloc/expandable_allocator.h"
#include "alloc/stream_pool_allocator.h"
#include "alloc/tf_bfc_allocator.h"
#include "baselines/basic_bfc.h"
#include "util/json.h"

namespace xmem::alloc {

namespace {

struct Entry {
  std::string description;
  BackendFactory factory;
};

/// Reject knob names the backend does not accept; the message lists what it
/// does accept (or says "takes no knobs") so a typo in a JSON config fails
/// with a fix, not a silently ignored setting.
void check_knob_names(const std::string& backend, const BackendKnobs& knobs,
                      std::initializer_list<const char*> accepted) {
  for (const auto& [name, value] : knobs) {
    bool known = false;
    for (const char* a : accepted) {
      if (name == a) {
        known = true;
        break;
      }
    }
    if (!known) {
      std::string list;
      for (const char* a : accepted) {
        if (!list.empty()) list += ", ";
        list += a;
      }
      throw std::invalid_argument(
          "backend '" + backend + "' does not accept knob '" + name + "' (" +
          (list.empty() ? "takes no knobs" : "accepted: " + list) + ")");
    }
  }
}

std::int64_t knob_or(const BackendKnobs& knobs, const char* name,
                     std::int64_t fallback) {
  const auto it = knobs.find(name);
  return it == knobs.end() ? fallback : it->second;
}

std::map<std::string, Entry>& registry() {
  static std::map<std::string, Entry> entries = {
      {"pytorch",
       {"CUDACachingAllocator port: 512 B rounding, 2/20 MiB buffers, "
        "split/coalesce, cached-segment reclaim (paper §3.4)",
        [](SimulatedCudaDriver& driver,
           const BackendKnobs& knobs) -> std::unique_ptr<fw::AllocatorBackend> {
          check_knob_names("pytorch", knobs, {});
          return std::make_unique<CachingAllocatorSim>(driver);
        }}},
      {"pytorch-expandable",
       {"Caching allocator with expandable segments: page-granular segment "
        "growth, max_split_size splitting cap "
        "(knobs: page_bytes, max_split_size_bytes)",
        [](SimulatedCudaDriver& driver,
           const BackendKnobs& knobs) -> std::unique_ptr<fw::AllocatorBackend> {
          check_knob_names("pytorch-expandable", knobs,
                           {"page_bytes", "max_split_size_bytes"});
          ExpandableConfig config;
          config.page_bytes = knob_or(knobs, "page_bytes", config.page_bytes);
          config.max_split_size_bytes =
              knob_or(knobs, "max_split_size_bytes",
                      config.max_split_size_bytes);
          return std::make_unique<ExpandableSegmentsAllocator>(driver, config);
        }}},
      {"tf-bfc",
       {"TensorFlow-style BFC: 256 B rounding, doubling regions never "
        "returned to the device (§6.4(ii))",
        [](SimulatedCudaDriver& driver,
           const BackendKnobs& knobs) -> std::unique_ptr<fw::AllocatorBackend> {
          check_knob_names("tf-bfc", knobs, {});
          return std::make_unique<TfBfcAllocator>(driver);
        }}},
      {"basic-bfc",
       {"DNNMem's single-level BFC over an unbounded arena: no driver, no "
        "caching policy, never OOMs",
        [](SimulatedCudaDriver&,
           const BackendKnobs& knobs) -> std::unique_ptr<fw::AllocatorBackend> {
          check_knob_names("basic-bfc", knobs, {});
          return std::make_unique<baselines::BasicBfcAllocator>();
        }}},
      {"cub-binned",
       {"CUB CachingDeviceAllocator-style geometric bins with a bounded "
        "block cache "
        "(knobs: bin_growth, min_bin, max_bin, max_cached_bytes)",
        [](SimulatedCudaDriver& driver,
           const BackendKnobs& knobs) -> std::unique_ptr<fw::AllocatorBackend> {
          check_knob_names("cub-binned", knobs,
                           {"bin_growth", "min_bin", "max_bin",
                            "max_cached_bytes"});
          CubConfig config;
          config.bin_growth = knob_or(knobs, "bin_growth", config.bin_growth);
          config.min_bin = knob_or(knobs, "min_bin", config.min_bin);
          config.max_bin = knob_or(knobs, "max_bin", config.max_bin);
          config.max_cached_bytes =
              knob_or(knobs, "max_cached_bytes", config.max_cached_bytes);
          return std::make_unique<CubBinnedAllocator>(driver, config);
        }}},
      {"stream-pool",
       {"cudaMallocAsync-style stream-ordered pool with release-threshold "
        "trimming (knobs: release_threshold_bytes, chunk_bytes)",
        [](SimulatedCudaDriver& driver,
           const BackendKnobs& knobs) -> std::unique_ptr<fw::AllocatorBackend> {
          check_knob_names("stream-pool", knobs,
                           {"release_threshold_bytes", "chunk_bytes"});
          StreamPoolConfig config;
          config.release_threshold_bytes =
              knob_or(knobs, "release_threshold_bytes",
                      config.release_threshold_bytes);
          config.chunk_bytes =
              knob_or(knobs, "chunk_bytes", config.chunk_bytes);
          return std::make_unique<StreamPoolAllocator>(driver, config);
        }}},
  };
  return entries;
}

}  // namespace

void register_backend(const std::string& name, const std::string& description,
                      BackendFactory factory) {
  if (name.empty()) {
    throw std::invalid_argument("register_backend: empty name");
  }
  if (!factory) {
    throw std::invalid_argument("register_backend: null factory for " + name);
  }
  const auto [it, inserted] =
      registry().emplace(name, Entry{description, std::move(factory)});
  if (!inserted) {
    throw std::invalid_argument("register_backend: duplicate name " + name);
  }
}

bool is_known_backend(const std::string& name) {
  return registry().count(name) > 0;
}

std::vector<std::string> backend_names() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, entry] : registry()) names.push_back(name);
  return names;  // std::map keeps them sorted
}

std::string backend_description(const std::string& name) {
  const auto it = registry().find(name);
  return it == registry().end() ? std::string() : it->second.description;
}

std::unique_ptr<fw::AllocatorBackend> make_backend(const std::string& name,
                                                   SimulatedCudaDriver& driver,
                                                   const BackendKnobs& knobs) {
  const auto it = registry().find(name);
  if (it == registry().end()) {
    std::string known;
    for (const auto& n : backend_names()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw std::invalid_argument("make_backend: unknown backend '" + name +
                                "' (registered: " + known + ")");
  }
  return it->second.factory(driver, knobs);
}

std::unique_ptr<fw::AllocatorBackend> make_backend(
    const std::string& name, SimulatedCudaDriver& driver) {
  return make_backend(name, driver, BackendKnobs{});
}

std::string knobs_fingerprint(const BackendKnobs& knobs) {
  std::string fingerprint;
  for (const auto& [name, value] : knobs) {  // map order: deterministic
    if (!fingerprint.empty()) fingerprint += ",";
    fingerprint += name + "=" + std::to_string(value);
  }
  return fingerprint;
}

BackendKnobs parse_backend_knobs(const util::Json& json,
                                 const std::string& context) {
  if (!json.is_object()) {
    throw std::invalid_argument(context +
                                ": backend knobs must be a JSON object of "
                                "integer values");
  }
  BackendKnobs knobs;
  for (const auto& [name, value] : json.as_object()) {
    if (!value.is_int()) {
      throw std::invalid_argument(
          context + ": knob '" + name +
          "' must be an integer (byte/count knobs only — no strings or "
          "fractions)");
    }
    knobs[name] = value.as_int();
  }
  return knobs;
}

}  // namespace xmem::alloc
