#include "alloc/backend_registry.h"

#include <map>
#include <stdexcept>

#include "alloc/caching_allocator.h"
#include "alloc/tf_bfc_allocator.h"
#include "baselines/basic_bfc.h"

namespace xmem::alloc {

namespace {

struct Entry {
  std::string description;
  BackendFactory factory;
};

std::map<std::string, Entry>& registry() {
  static std::map<std::string, Entry> entries = {
      {"pytorch",
       {"CUDACachingAllocator port: 512 B rounding, 2/20 MiB buffers, "
        "split/coalesce, cached-segment reclaim (paper §3.4)",
        [](SimulatedCudaDriver& driver) -> std::unique_ptr<fw::AllocatorBackend> {
          return std::make_unique<CachingAllocatorSim>(driver);
        }}},
      {"tf-bfc",
       {"TensorFlow-style BFC: 256 B rounding, doubling regions never "
        "returned to the device (§6.4(ii))",
        [](SimulatedCudaDriver& driver) -> std::unique_ptr<fw::AllocatorBackend> {
          return std::make_unique<TfBfcAllocator>(driver);
        }}},
      {"basic-bfc",
       {"DNNMem's single-level BFC over an unbounded arena: no driver, no "
        "caching policy, never OOMs",
        [](SimulatedCudaDriver&) -> std::unique_ptr<fw::AllocatorBackend> {
          return std::make_unique<baselines::BasicBfcAllocator>();
        }}},
  };
  return entries;
}

}  // namespace

void register_backend(const std::string& name, const std::string& description,
                      BackendFactory factory) {
  if (name.empty()) {
    throw std::invalid_argument("register_backend: empty name");
  }
  if (!factory) {
    throw std::invalid_argument("register_backend: null factory for " + name);
  }
  const auto [it, inserted] =
      registry().emplace(name, Entry{description, std::move(factory)});
  if (!inserted) {
    throw std::invalid_argument("register_backend: duplicate name " + name);
  }
}

bool is_known_backend(const std::string& name) {
  return registry().count(name) > 0;
}

std::vector<std::string> backend_names() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, entry] : registry()) names.push_back(name);
  return names;  // std::map keeps them sorted
}

std::string backend_description(const std::string& name) {
  const auto it = registry().find(name);
  return it == registry().end() ? std::string() : it->second.description;
}

std::unique_ptr<fw::AllocatorBackend> make_backend(
    const std::string& name, SimulatedCudaDriver& driver) {
  const auto it = registry().find(name);
  if (it == registry().end()) {
    std::string known;
    for (const auto& n : backend_names()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw std::invalid_argument("make_backend: unknown backend '" + name +
                                "' (registered: " + known + ")");
  }
  return it->second.factory(driver);
}

}  // namespace xmem::alloc
