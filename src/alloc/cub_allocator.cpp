#include "alloc/cub_allocator.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace xmem::alloc {

CubBinnedAllocator::CubBinnedAllocator(SimulatedCudaDriver& driver,
                                       const CubConfig& config)
    : driver_(driver), config_(config) {
  if (config.bin_growth < 2) {
    throw std::invalid_argument(
        "cub-binned: malformed bin config: bin_growth must be >= 2 (got " +
        std::to_string(config.bin_growth) + ")");
  }
  if (config.min_bin < 0) {
    throw std::invalid_argument(
        "cub-binned: malformed bin config: min_bin must be >= 0 (got " +
        std::to_string(config.min_bin) + ")");
  }
  if (config.max_bin < config.min_bin) {
    throw std::invalid_argument(
        "cub-binned: malformed bin config: max_bin (" +
        std::to_string(config.max_bin) + ") must be >= min_bin (" +
        std::to_string(config.min_bin) + ")");
  }
  if (config.max_cached_bytes < 0) {
    throw std::invalid_argument(
        "cub-binned: max_cached_bytes must be >= 0 (got " +
        std::to_string(config.max_cached_bytes) + ")");
  }
  // largest bin = bin_growth^max_bin, rejected if it overflows.
  std::int64_t size = 1;
  for (std::int64_t i = 0; i < config.max_bin; ++i) {
    if (size > (std::int64_t{1} << 62) / config.bin_growth) {
      throw std::invalid_argument(
          "cub-binned: malformed bin config: bin_growth^max_bin (" +
          std::to_string(config.bin_growth) + "^" +
          std::to_string(config.max_bin) + ") overflows 64-bit sizes; "
          "lower max_bin or bin_growth");
    }
    size *= config.bin_growth;
  }
  largest_bin_bytes_ = size;
}

std::int64_t CubBinnedAllocator::backend_round(std::int64_t bytes) const {
  // Smallest bin >= bytes; past the largest bin requests are served exact.
  std::int64_t size = 1;
  for (std::int64_t i = 0; i < config_.min_bin; ++i) size *= config_.bin_growth;
  while (size < bytes && size < largest_bin_bytes_) size *= config_.bin_growth;
  return size >= bytes ? size : bytes;
}

fw::BackendAllocResult CubBinnedAllocator::backend_alloc(std::int64_t bytes) {
  if (bytes <= 0) {
    throw std::invalid_argument("CubBinnedAllocator::backend_alloc: bytes <= 0");
  }
  const std::int64_t bin_bytes = backend_round(bytes);
  const bool oversize = bin_bytes > largest_bin_bytes_;

  std::uint64_t addr = 0;
  auto cached_it = oversize ? cached_.end() : cached_.find(bin_bytes);
  if (cached_it != cached_.end() && !cached_it->second.empty()) {
    // Reuse the lowest-addressed cached block of this bin.
    auto addr_it = cached_it->second.begin();
    addr = *addr_it;
    cached_it->second.erase(addr_it);
    cached_bytes_ -= bin_bytes;
  } else {
    auto dev = driver_.cuda_malloc(bin_bytes);
    if (!dev.has_value() && cached_bytes_ > 0) {
      // cub's failure path: free every cached block, then retry once.
      free_all_cached();
      dev = driver_.cuda_malloc(bin_bytes);
    }
    if (!dev.has_value()) {
      return fw::BackendAllocResult{-1, 0, true};
    }
    addr = *dev;
    ++num_driver_mallocs_;
    stats_.reserved_bytes += bin_bytes;
    stats_.peak_reserved_bytes =
        std::max(stats_.peak_reserved_bytes, stats_.reserved_bytes);
    ++stats_.num_segments;
  }

  const std::int64_t id = next_id_++;
  live_[id] = LiveBlock{addr, bin_bytes, oversize};
  stats_.active_bytes += bin_bytes;
  stats_.peak_active_bytes =
      std::max(stats_.peak_active_bytes, stats_.active_bytes);
  ++stats_.num_allocs;
  return fw::BackendAllocResult{id, bin_bytes, false};
}

void CubBinnedAllocator::backend_free(std::int64_t id) {
  auto it = live_.find(id);
  if (it == live_.end()) {
    throw std::logic_error("CubBinnedAllocator::backend_free: unknown id");
  }
  const LiveBlock block = it->second;
  live_.erase(it);
  stats_.active_bytes -= block.bytes;
  ++stats_.num_frees;

  if (block.oversize ||
      cached_bytes_ + block.bytes > config_.max_cached_bytes) {
    driver_.cuda_free(block.addr);
    stats_.reserved_bytes -= block.bytes;
    --stats_.num_segments;
  } else {
    cached_[block.bytes].insert(block.addr);
    cached_bytes_ += block.bytes;
  }
}

void CubBinnedAllocator::free_all_cached() {
  for (auto& [bin_bytes, addrs] : cached_) {
    for (const std::uint64_t addr : addrs) {
      driver_.cuda_free(addr);
      stats_.reserved_bytes -= bin_bytes;
      --stats_.num_segments;
    }
    addrs.clear();
  }
  cached_bytes_ = 0;
}

void CubBinnedAllocator::backend_trim() { free_all_cached(); }

void CubBinnedAllocator::backend_reset() {
  free_all_cached();
  for (const auto& [id, block] : live_) {
    driver_.cuda_free(block.addr);
  }
  live_.clear();
  cached_.clear();
  next_id_ = 1;
  num_driver_mallocs_ = 0;
  stats_ = fw::BackendStats{};
}

fw::BackendStats CubBinnedAllocator::backend_stats() const {
  fw::BackendStats s = stats_;
  s.num_live_blocks = static_cast<std::int64_t>(live_.size());
  return s;
}

}  // namespace xmem::alloc
