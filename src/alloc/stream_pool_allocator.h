// Stream-ordered pool allocator — the cudaMallocAsync / cudaMemPool
// semantics (CTranslate2's CudaAsyncAllocator path in SNIPPETS.md
// Snippet 2): the driver-side pool grows in large chunks, carves requests
// out of them best-fit, and after every free trims itself back down to a
// release threshold (cudaMemPoolAttrReleaseThreshold, default 0 — the CUDA
// default, which returns every wholly-free chunk at the first
// synchronization point).
//
// The simulation is single-stream like the rest of the tower, so "at the
// next synchronization" collapses to "immediately after the free"; what the
// knob controls is how much idle (reserved minus active) memory the pool is
// allowed to keep holding.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "alloc/cuda_driver_sim.h"
#include "fw/backend.h"

namespace xmem::alloc {

struct StreamPoolConfig {
  /// Idle bytes (reserved - active) the pool may retain before it starts
  /// releasing wholly-free chunks. 0 = release eagerly (CUDA's default).
  std::int64_t release_threshold_bytes = 0;
  /// Minimum chunk acquired from the driver; larger requests get a chunk
  /// of exactly their (rounded) size.
  std::int64_t chunk_bytes = 32 * util::kMiB;
};

class StreamPoolAllocator final : public fw::AllocatorBackend {
 public:
  static constexpr std::int64_t kAlignment = 256;

  /// Throws std::invalid_argument on a malformed config (non-positive
  /// chunk_bytes, negative release threshold).
  StreamPoolAllocator(SimulatedCudaDriver& driver,
                      const StreamPoolConfig& config);
  ~StreamPoolAllocator();
  StreamPoolAllocator(const StreamPoolAllocator&) = delete;
  StreamPoolAllocator& operator=(const StreamPoolAllocator&) = delete;

  // fw::AllocatorBackend.
  std::string_view backend_name() const override { return "stream-pool"; }
  fw::BackendAllocResult backend_alloc(std::int64_t bytes) override;
  void backend_free(std::int64_t id) override;
  fw::BackendStats backend_stats() const override;
  std::int64_t backend_round(std::int64_t bytes) const override {
    return util::round_up(bytes, kAlignment);
  }
  void backend_trim() override;
  void backend_reset() override;

  /// Chunks released by threshold trimming so far (not by trim/reset).
  std::int64_t num_threshold_releases() const { return num_threshold_releases_; }

 private:
  struct Block;
  struct Less {
    bool operator()(const Block* a, const Block* b) const;
  };

  Block* grow(std::int64_t rounded);
  void release_free_chunks(std::int64_t keep_idle_bytes);
  std::unique_ptr<Block> acquire_block();
  void recycle_block(std::uint64_t addr);

  SimulatedCudaDriver& driver_;
  StreamPoolConfig config_;
  std::map<std::uint64_t, std::unique_ptr<Block>> blocks_;
  std::map<std::int64_t, Block*> live_;
  std::set<Block*, Less> free_blocks_;
  std::vector<std::unique_ptr<Block>> spare_blocks_;
  std::int64_t next_id_ = 1;
  std::int64_t num_threshold_releases_ = 0;
  fw::BackendStats stats_;
};

}  // namespace xmem::alloc
