#include "baselines/llmem.h"

#include <algorithm>

#include "fw/optimizer.h"
#include "gpu/ground_truth.h"
#include "models/zoo.h"

namespace xmem::baselines {

bool LLMemEstimator::supports(const core::TrainJob& job) const {
  if (!models::is_known_model(job.model_name)) return false;
  const fw::ModelDescriptor probe = models::build_model(job.model_name, 1);
  return probe.family == fw::ModelFamily::kTransformer;
}

core::EstimateResult LLMemEstimator::compute(const core::TrainJob& job,
                                             const gpu::DeviceModel& device) {
  core::EstimateResult result;

  // Probe runs at batch 1 and 2 on the target GPU (direct measurement —
  // this is the step that violates the zero-target-GPU-overhead constraint).
  const gpu::GroundTruthRunner runner;
  gpu::GroundTruthOptions gt;
  gt.iterations = options_.probe_iterations;
  gt.placement = job.placement;
  gt.seed = util::derive_seed(job.seed, 0x11E3);

  const fw::ModelDescriptor model_b1 = models::build_model(job.model_name, 1);
  const gpu::GroundTruthResult probe1 =
      runner.run(model_b1, job.optimizer, device, gt);
  const fw::ModelDescriptor model_b2 = models::build_model(job.model_name, 2);
  const gpu::GroundTruthResult probe2 =
      runner.run(model_b2, job.optimizer, device, gt);

  if (probe1.oom || probe2.oom) {
    // Even the probes do not fit: report the static formula value and
    // predict OOM — the "GPU capacity restricts estimation for very large
    // models" failure mode of direct estimators (§5.3).
    const std::int64_t params = model_b1.param_bytes();
    result.estimated_peak = params * 4;  // weights + grads + AdamW states
    result.oom_predicted = true;
    return result;
  }

  // Linear extrapolation of the per-sample growth, scaled by the
  // mixed-precision fine-tuning assumption.
  const double slope = std::max<double>(
      0.0, static_cast<double>(probe2.peak_job_bytes - probe1.peak_job_bytes));
  const double activation_term = options_.mixed_precision_activation_factor *
                                 slope *
                                 static_cast<double>(job.batch_size - 1);

  // LLMem's formula assumes AdamW fine-tuning: two fp32 state words per
  // parameter. Whatever the probe already observed for the real optimizer
  // is replaced by the assumed AdamW footprint.
  const std::int64_t param_bytes = model_b1.param_bytes();
  const std::int64_t assumed_state = 2 * param_bytes;
  const std::int64_t actual_state = fw::total_optimizer_state_bytes(
      job.optimizer, [&] {
        std::vector<fw::TensorDesc> params;
        for (const auto& module : model_b1.modules) {
          for (const auto& p : module.params) params.push_back(p);
        }
        return params;
      }());

  result.estimated_peak =
      probe1.peak_job_bytes + static_cast<std::int64_t>(activation_term) +
      (assumed_state - actual_state);
  result.estimated_peak = std::max<std::int64_t>(result.estimated_peak, 1);
  result.oom_predicted = result.estimated_peak > device.job_budget();
  return result;
}

}  // namespace xmem::baselines
