#include "baselines/gbm.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace xmem::baselines {

namespace {

double subset_mean(const std::vector<double>& values,
                   const std::vector<std::size_t>& indices) {
  if (indices.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t i : indices) sum += values[i];
  return sum / static_cast<double>(indices.size());
}

}  // namespace

double GbmRegressor::Tree::predict(const std::vector<double>& row) const {
  int node_index = 0;
  while (true) {
    const Node& node = nodes[static_cast<std::size_t>(node_index)];
    if (node.feature < 0) return node.value;
    node_index = row[static_cast<std::size_t>(node.feature)] <= node.threshold
                     ? node.left
                     : node.right;
  }
}

int GbmRegressor::build_node(Tree& tree,
                             const std::vector<std::vector<double>>& rows,
                             const std::vector<double>& residuals,
                             std::vector<std::size_t>& indices,
                             int depth) const {
  const int node_index = static_cast<int>(tree.nodes.size());
  tree.nodes.push_back(Node{});
  tree.nodes.back().value = subset_mean(residuals, indices);

  if (depth >= config_.max_depth ||
      indices.size() < 2 * static_cast<std::size_t>(config_.min_samples_leaf)) {
    return node_index;
  }

  const std::size_t num_features = rows[indices.front()].size();
  double best_gain = 0.0;
  int best_feature = -1;
  double best_threshold = 0.0;

  const double total_sum = [&] {
    double s = 0.0;
    for (std::size_t i : indices) s += residuals[i];
    return s;
  }();
  const auto n = static_cast<double>(indices.size());

  std::vector<double> values(indices.size());
  for (std::size_t f = 0; f < num_features; ++f) {
    for (std::size_t k = 0; k < indices.size(); ++k) {
      values[k] = rows[indices[k]][f];
    }
    std::vector<double> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    if (sorted.front() == sorted.back()) continue;

    for (int c = 1; c <= config_.candidate_splits; ++c) {
      const double q = static_cast<double>(c) /
                       static_cast<double>(config_.candidate_splits + 1);
      const auto pos = static_cast<std::size_t>(
          q * static_cast<double>(sorted.size() - 1));
      const double threshold = sorted[pos];
      double left_sum = 0.0;
      double left_n = 0.0;
      for (std::size_t k = 0; k < indices.size(); ++k) {
        if (values[k] <= threshold) {
          left_sum += residuals[indices[k]];
          left_n += 1.0;
        }
      }
      const double right_n = n - left_n;
      if (left_n < config_.min_samples_leaf || right_n < config_.min_samples_leaf) {
        continue;
      }
      const double right_sum = total_sum - left_sum;
      // Variance-reduction gain (up to constants): sum^2/n decomposition.
      const double gain = left_sum * left_sum / left_n +
                          right_sum * right_sum / right_n -
                          total_sum * total_sum / n;
      if (gain > best_gain + 1e-12) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = threshold;
      }
    }
  }

  if (best_feature < 0) return node_index;

  std::vector<std::size_t> left_indices, right_indices;
  for (std::size_t i : indices) {
    if (rows[i][static_cast<std::size_t>(best_feature)] <= best_threshold) {
      left_indices.push_back(i);
    } else {
      right_indices.push_back(i);
    }
  }
  if (left_indices.empty() || right_indices.empty()) return node_index;

  tree.nodes[static_cast<std::size_t>(node_index)].feature = best_feature;
  tree.nodes[static_cast<std::size_t>(node_index)].threshold = best_threshold;
  const int left = build_node(tree, rows, residuals, left_indices, depth + 1);
  tree.nodes[static_cast<std::size_t>(node_index)].left = left;
  const int right = build_node(tree, rows, residuals, right_indices, depth + 1);
  tree.nodes[static_cast<std::size_t>(node_index)].right = right;
  return node_index;
}

GbmRegressor::Tree GbmRegressor::fit_tree(
    const std::vector<std::vector<double>>& rows,
    const std::vector<double>& residuals,
    const std::vector<std::size_t>& indices) const {
  Tree tree;
  std::vector<std::size_t> root_indices = indices;
  build_node(tree, rows, residuals, root_indices, 0);
  return tree;
}

void GbmRegressor::fit(const std::vector<std::vector<double>>& rows,
                       const std::vector<double>& y) {
  if (rows.empty() || rows.size() != y.size()) {
    throw std::invalid_argument("GbmRegressor::fit: bad training data");
  }
  base_prediction_ =
      std::accumulate(y.begin(), y.end(), 0.0) / static_cast<double>(y.size());
  base_initialized_ = true;
  trees_.clear();

  std::vector<double> predictions(y.size(), base_prediction_);
  std::vector<std::size_t> all_indices(y.size());
  std::iota(all_indices.begin(), all_indices.end(), 0);

  std::vector<double> residuals(y.size());
  for (int round = 0; round < config_.rounds; ++round) {
    for (std::size_t i = 0; i < y.size(); ++i) {
      residuals[i] = y[i] - predictions[i];
    }
    Tree tree = fit_tree(rows, residuals, all_indices);
    for (std::size_t i = 0; i < y.size(); ++i) {
      predictions[i] += config_.learning_rate * tree.predict(rows[i]);
    }
    trees_.push_back(std::move(tree));
  }
}

double GbmRegressor::predict(const std::vector<double>& row) const {
  if (!base_initialized_) {
    throw std::logic_error("GbmRegressor::predict: model not trained");
  }
  double prediction = base_prediction_;
  for (const Tree& tree : trees_) {
    prediction += config_.learning_rate * tree.predict(row);
  }
  return prediction;
}

}  // namespace xmem::baselines
