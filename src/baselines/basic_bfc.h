// Basic single-level BFC allocator — the allocator model our DNNMem
// reimplementation uses (per the xMem paper, DNNMem "combines computational
// graph analysis with the simulation of a basic BFC allocator" but models
// neither the device-level allocator nor cached-segment reclamation, and
// has no small/large pool policy or 20 MiB over-reservation buckets).
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "fw/backend.h"

namespace xmem::baselines {

class BasicBfcAllocator final : public fw::AllocatorBackend {
 public:
  static constexpr std::int64_t kAlignment = 512;
  static constexpr std::int64_t kSegmentGranularity = 2 * 1024 * 1024;

  BasicBfcAllocator();
  ~BasicBfcAllocator();
  BasicBfcAllocator(const BasicBfcAllocator&) = delete;
  BasicBfcAllocator& operator=(const BasicBfcAllocator&) = delete;

  /// Allocate; always succeeds (arena is unbounded — DNNMem produces an
  /// estimate, then compares it with capacity afterwards).
  std::int64_t alloc(std::int64_t bytes);
  void free(std::int64_t id);

  std::int64_t reserved_bytes() const { return reserved_; }
  std::int64_t peak_reserved_bytes() const { return peak_reserved_; }
  std::int64_t allocated_bytes() const { return allocated_; }
  std::int64_t peak_allocated_bytes() const { return peak_allocated_; }
  std::size_t num_live() const { return num_live_; }

  // fw::AllocatorBackend. The arena is unbounded (no driver underneath), so
  // backend_alloc never reports OOM and backend_trim() is the default no-op
  // (the model never returns memory).
  std::string_view backend_name() const override { return "basic-bfc"; }
  fw::BackendAllocResult backend_alloc(std::int64_t bytes) override;
  void backend_free(std::int64_t id) override { free(id); }
  fw::BackendStats backend_stats() const override;
  std::int64_t backend_round(std::int64_t bytes) const override;
  void backend_reset() override;

 private:
  struct Block;
  struct Less {
    bool operator()(const Block* a, const Block* b) const;
  };

  Block* acquire_block();
  Block* live_block(std::int64_t id) const;

  static constexpr std::uint64_t kArenaBase = 0x400000000ULL;

  std::uint64_t next_addr_ = kArenaBase;
  std::int64_t next_id_ = 1;
  std::int64_t reserved_ = 0;
  std::int64_t peak_reserved_ = 0;
  std::int64_t allocated_ = 0;
  std::int64_t peak_allocated_ = 0;
  std::int64_t num_allocs_ = 0;
  std::int64_t num_frees_ = 0;
  std::int64_t num_segments_ = 0;
  std::size_t num_live_ = 0;
  std::set<Block*, Less> free_blocks_;
  // Grow-only node storage: the arena owns every Block ever created;
  // coalescing and backend_reset() only move raw pointers onto the spare
  // list, so steady-state replays allocate no nodes at all.
  std::vector<std::unique_ptr<Block>> arena_;
  std::vector<Block*> spare_blocks_;
  // Flat live table indexed directly by the sequential block id (slot ==
  // id); grows by doubling and keeps its capacity across backend_reset().
  std::vector<Block*> live_slots_;
};

}  // namespace xmem::baselines
