// DNNMem reimplementation (static-analysis baseline).
//
// The original is closed source; like the xMem authors we reimplement it
// from its paper's description: walk the static computation graph, compute
// tensor sizes and liveness, and replay them through a basic BFC allocator.
// Its documented blind spots (xMem paper §5.1) are reproduced faithfully:
//   * no optimizer-state modelling (accurate for SGD, not for Adam-family);
//   * no awareness of optimizer.zero_grad() placement — gradients are
//     assumed to die at the iteration boundary;
//   * no operator workspaces or algorithm-search transients (those are not
//     in the graph);
//   * single-level allocator: no device granularity, no 20 MiB buckets, no
//     cached-segment reclamation before OOM.
#pragma once

#include "core/estimator_api.h"

namespace xmem::baselines {

class DnnMemEstimator final : public core::Estimator {
 public:
  std::string name() const override { return "DNNMem"; }

 protected:
  core::EstimateResult compute(const core::TrainJob& job,
                               const gpu::DeviceModel& device) override;
};

}  // namespace xmem::baselines
