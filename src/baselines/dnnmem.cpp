#include "baselines/dnnmem.h"

#include <vector>

#include "baselines/basic_bfc.h"
#include "models/zoo.h"

namespace xmem::baselines {

namespace {

using fw::ModelDescriptor;
using fw::ModuleSpec;
using fw::OpSpec;

/// Static graph walk: two training iterations replayed through the basic
/// BFC model. Tensor sizes come from the graph (shapes); nothing
/// runtime-specific (workspaces, benchmark trials, lazy optimizer state,
/// zero_grad placement) is visible to a static analyzer.
std::int64_t static_walk_peak(const ModelDescriptor& model) {
  BasicBfcAllocator bfc;

  // Parameters are resident for the whole job.
  for (const ModuleSpec& module : model.modules) {
    for (const auto& param : module.params) bfc.alloc(param.bytes());
  }

  struct SavedTensor {
    std::int64_t id;
  };
  for (int iteration = 0; iteration < 2; ++iteration) {
    std::vector<std::int64_t> batch_ids;
    batch_ids.push_back(bfc.alloc(model.input_bytes));
    batch_ids.push_back(bfc.alloc(model.target_bytes));

    // Forward: allocate outputs; liveness from the graph (saved tensors
    // survive to their backward op, pass-through tensors die at the next
    // consumer).
    struct TapeEntry {
      const ModuleSpec* module;
      const OpSpec* op;
      std::vector<std::int64_t> saved;
    };
    std::vector<TapeEntry> tape;
    std::int64_t pass_through = -1;
    for (const ModuleSpec& module : model.modules) {
      for (const OpSpec& op : module.ops) {
        TapeEntry entry{&module, &op, {}};
        std::int64_t out = -1;
        if (op.output_bytes > 0) out = bfc.alloc(op.output_bytes);
        // Graph-derivable saved tensors (normalization statistics, pooling
        // indices, attention statistics) — identical across backends.
        if (op.saved_bytes_gpu > 0) {
          entry.saved.push_back(bfc.alloc(op.saved_bytes_gpu));
        }
        if (pass_through >= 0) {
          bfc.free(pass_through);
          pass_through = -1;
        }
        if (out >= 0) {
          if (op.output_saved) {
            entry.saved.push_back(out);
          } else {
            pass_through = out;
          }
        }
        tape.push_back(std::move(entry));
      }
    }
    if (pass_through >= 0) bfc.free(pass_through);

    // Backward: gradient chain + parameter gradients. DNNMem's loop model
    // keeps parameter gradients until the end of the iteration.
    std::vector<std::int64_t> grad_ids;
    std::int64_t chain = -1;
    for (auto it = tape.rbegin(); it != tape.rend(); ++it) {
      const OpSpec& op = *it->op;
      if (op.allocates_param_grads) {
        for (const auto& param : it->module->params) {
          grad_ids.push_back(bfc.alloc(param.bytes()));
        }
      }
      std::int64_t grad_input = -1;
      if (op.grad_input_bytes > 0) grad_input = bfc.alloc(op.grad_input_bytes);
      for (std::int64_t saved : it->saved) bfc.free(saved);
      if (grad_input >= 0) {
        if (chain >= 0) bfc.free(chain);
        chain = grad_input;
      }
    }
    if (chain >= 0) bfc.free(chain);

    // Iteration boundary: gradients cleared, batch released. (No optimizer
    // state is ever allocated — the static graph does not describe the
    // optimizer.)
    for (std::int64_t id : grad_ids) bfc.free(id);
    for (std::int64_t id : batch_ids) bfc.free(id);
  }
  return bfc.peak_reserved_bytes();
}

}  // namespace

core::EstimateResult DnnMemEstimator::compute(const core::TrainJob& job,
                                              const gpu::DeviceModel& device) {
  const ModelDescriptor model =
      models::build_model(job.model_name, job.batch_size);
  core::EstimateResult result;
  result.estimated_peak = static_walk_peak(model);
  result.oom_predicted = result.estimated_peak > device.job_budget();
  return result;
}

}  // namespace xmem::baselines
