// LLMem reimplementation (direct-GPU-measurement baseline).
//
// LLMem estimates fine-tuning memory for CausalLM models by running probe
// executions on the target GPU and extrapolating. Faithfully reproduced
// properties (per its description in the xMem paper §5.3 and the LLMem
// paper's stated scope):
//   * Transformer-only: supports() is false for CNNs (the Fig. 7 "absent
//     box" case).
//   * Consumes target-GPU time: the probes run on the ground-truth stack,
//     and their cost is charged to the estimator's runtime (RQ4).
//   * Fine-tuning assumptions misapplied to full fp32 training: activation
//     growth is scaled by the mixed-precision factor, and AdamW optimizer
//     state is assumed regardless of the job's actual optimizer — the two
//     systematic error sources behind its large errors in Fig. 7b/7d.
#pragma once

#include "core/estimator_api.h"

namespace xmem::baselines {

struct LLMemOptions {
  /// Activation bytes per sample are assumed to scale by this factor
  /// (fp16/bf16 mixed-precision fine-tuning assumption).
  double mixed_precision_activation_factor = 0.55;
  int probe_iterations = 2;
};

class LLMemEstimator final : public core::Estimator {
 public:
  explicit LLMemEstimator(LLMemOptions options = {}) : options_(options) {}

  std::string name() const override { return "LLMem"; }

  bool supports(const core::TrainJob& job) const override;

 protected:
  core::EstimateResult compute(const core::TrainJob& job,
                               const gpu::DeviceModel& device) override;

 private:
  LLMemOptions options_;
};

}  // namespace xmem::baselines
