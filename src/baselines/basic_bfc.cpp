#include "baselines/basic_bfc.h"

#include <algorithm>
#include <stdexcept>

#include "util/bytes.h"

namespace xmem::baselines {

struct BasicBfcAllocator::Block {
  std::uint64_t addr = 0;
  std::int64_t size = 0;
  bool allocated = false;
  std::int64_t id = -1;
  Block* prev = nullptr;
  Block* next = nullptr;
};

bool BasicBfcAllocator::Less::operator()(const Block* a, const Block* b) const {
  if (a->size != b->size) return a->size < b->size;
  return a->addr < b->addr;
}

BasicBfcAllocator::BasicBfcAllocator() = default;
BasicBfcAllocator::~BasicBfcAllocator() = default;

BasicBfcAllocator::Block* BasicBfcAllocator::acquire_block() {
  if (spare_blocks_.empty()) {
    arena_.push_back(std::make_unique<Block>());
    return arena_.back().get();
  }
  Block* block = spare_blocks_.back();
  spare_blocks_.pop_back();
  *block = Block{};
  return block;
}

BasicBfcAllocator::Block* BasicBfcAllocator::live_block(std::int64_t id) const {
  if (id < 1 || static_cast<std::size_t>(id) >= live_slots_.size()) {
    return nullptr;
  }
  return live_slots_[static_cast<std::size_t>(id)];
}

std::int64_t BasicBfcAllocator::alloc(std::int64_t bytes) {
  if (bytes <= 0) throw std::invalid_argument("BasicBfcAllocator: bytes <= 0");
  const std::int64_t rounded = util::round_up(bytes, kAlignment);

  Block key;
  key.size = rounded;
  key.addr = 0;
  Block* block = nullptr;
  auto it = free_blocks_.lower_bound(&key);
  if (it != free_blocks_.end()) {
    block = *it;
    free_blocks_.erase(it);
  } else {
    const std::int64_t segment = util::round_up(rounded, kSegmentGranularity);
    block = acquire_block();
    block->addr = next_addr_;
    block->size = segment;
    next_addr_ += static_cast<std::uint64_t>(segment) + kSegmentGranularity;
    reserved_ += segment;
    peak_reserved_ = std::max(peak_reserved_, reserved_);
    ++num_segments_;
  }

  if (block->size - rounded >= kAlignment) {
    Block* remainder = acquire_block();
    remainder->addr = block->addr + static_cast<std::uint64_t>(rounded);
    remainder->size = block->size - rounded;
    remainder->prev = block;
    remainder->next = block->next;
    if (block->next != nullptr) block->next->prev = remainder;
    block->next = remainder;
    block->size = rounded;
    free_blocks_.insert(remainder);
  }

  block->allocated = true;
  block->id = next_id_++;
  const auto slot = static_cast<std::size_t>(block->id);
  if (slot >= live_slots_.size()) {
    live_slots_.resize(std::max(live_slots_.size() * 2, slot + 1), nullptr);
  }
  live_slots_[slot] = block;
  ++num_live_;
  allocated_ += block->size;
  peak_allocated_ = std::max(peak_allocated_, allocated_);
  ++num_allocs_;
  return block->id;
}

void BasicBfcAllocator::free(std::int64_t id) {
  Block* block = live_block(id);
  if (block == nullptr) {
    throw std::logic_error("BasicBfcAllocator::free: unknown id");
  }
  live_slots_[static_cast<std::size_t>(id)] = nullptr;
  --num_live_;
  allocated_ -= block->size;
  ++num_frees_;
  block->allocated = false;
  block->id = -1;

  if (Block* prev = block->prev; prev != nullptr && !prev->allocated) {
    free_blocks_.erase(prev);
    prev->size += block->size;
    prev->next = block->next;
    if (block->next != nullptr) block->next->prev = prev;
    spare_blocks_.push_back(block);
    block = prev;
  }
  if (Block* next = block->next; next != nullptr && !next->allocated) {
    free_blocks_.erase(next);
    block->size += next->size;
    block->next = next->next;
    if (next->next != nullptr) next->next->prev = block;
    spare_blocks_.push_back(next);
  }
  free_blocks_.insert(block);
}

void BasicBfcAllocator::backend_reset() {
  // No driver underneath — every node goes back on the spare list (the
  // arena keeps ownership) and the address space restarts. live_slots_
  // keeps its capacity so the next replay writes into warm storage.
  spare_blocks_.clear();
  spare_blocks_.reserve(arena_.size());
  for (const auto& block : arena_) spare_blocks_.push_back(block.get());
  std::fill(live_slots_.begin(), live_slots_.end(), nullptr);
  free_blocks_.clear();
  num_live_ = 0;
  next_addr_ = kArenaBase;
  next_id_ = 1;
  reserved_ = 0;
  peak_reserved_ = 0;
  allocated_ = 0;
  peak_allocated_ = 0;
  num_allocs_ = 0;
  num_frees_ = 0;
  num_segments_ = 0;
}

fw::BackendAllocResult BasicBfcAllocator::backend_alloc(std::int64_t bytes) {
  const std::int64_t id = alloc(bytes);
  return fw::BackendAllocResult{id, live_block(id)->size, false};
}

fw::BackendStats BasicBfcAllocator::backend_stats() const {
  fw::BackendStats s;
  s.active_bytes = allocated_;
  s.peak_active_bytes = peak_allocated_;
  s.reserved_bytes = reserved_;
  s.peak_reserved_bytes = peak_reserved_;
  s.num_allocs = num_allocs_;
  s.num_frees = num_frees_;
  s.num_segments = num_segments_;
  s.num_live_blocks = static_cast<std::int64_t>(num_live_);
  return s;
}

std::int64_t BasicBfcAllocator::backend_round(std::int64_t bytes) const {
  return util::round_up(bytes, kAlignment);
}

}  // namespace xmem::baselines
