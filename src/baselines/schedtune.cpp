#include "baselines/schedtune.h"

#include <cmath>

#include "fw/optimizer.h"
#include "gpu/ground_truth.h"
#include "models/workload.h"
#include "models/zoo.h"
#include "util/bytes.h"

namespace xmem::baselines {

namespace {

/// Pre-2021 models form the "historical data" SchedTune was trained on.
const std::vector<std::string>& history_models() {
  static const std::vector<std::string> kModels = {
      "VGG16", "ResNet101", "MobileNetV2", "MnasNet",
      "distilgpt2", "gpt2", "T5-small"};
  return kModels;
}

double optimizer_state_words(fw::OptimizerKind kind) {
  switch (kind) {
    case fw::OptimizerKind::kSgd: return 0.0;
    case fw::OptimizerKind::kAdam:
    case fw::OptimizerKind::kAdamW: return 2.0;
    case fw::OptimizerKind::kRmsprop:
    case fw::OptimizerKind::kAdagrad: return 1.0;
    case fw::OptimizerKind::kAdafactor: return 0.05;  // factored states
  }
  return 0.0;
}

}  // namespace

std::vector<double> SchedTuneEstimator::features(
    const core::TrainJob& job, const gpu::DeviceModel& device) {
  const fw::ModelDescriptor model = models::build_model(job.model_name, 1);
  return {
      std::log10(static_cast<double>(model.param_count()) + 1.0),
      static_cast<double>(model.modules.size()),
      static_cast<double>(job.batch_size),
      model.family == fw::ModelFamily::kTransformer ? 1.0 : 0.0,
      optimizer_state_words(job.optimizer),
      static_cast<double>(model.hidden_dim),
      static_cast<double>(model.vocab_size) / 1000.0,
      static_cast<double>(model.seq_len),
      static_cast<double>(device.capacity) / static_cast<double>(util::kGiB),
  };
}

SchedTuneEstimator::SchedTuneEstimator(SchedTuneOptions options)
    : gbm_(options.gbm) {
  train(options);
}

void SchedTuneEstimator::train(const SchedTuneOptions& options) {
  std::vector<std::vector<double>> rows;
  std::vector<double> targets;  // peak memory in GiB

  const gpu::GroundTruthRunner runner;
  const std::vector<gpu::DeviceModel> devices = {gpu::rtx3060(),
                                                 gpu::rtx4060()};
  std::uint64_t run_id = 0;
  for (const auto& model_name : history_models()) {
    for (const auto optimizer : models::optimizers_for(model_name)) {
      for (const int batch : models::batch_grid_for(model_name)) {
        // One historical device per configuration (alternating) keeps the
        // dataset size realistic; the device capacity is a feature.
        const gpu::DeviceModel& device = devices[run_id % devices.size()];
        ++run_id;

        const fw::ModelDescriptor model =
            models::build_model(model_name, batch);
        gpu::GroundTruthOptions gt;
        gt.seed = util::derive_seed(options.history_seed, run_id);
        gt.iterations = 4;
        const gpu::GroundTruthResult result =
            runner.run(model, optimizer, device, gt);
        if (result.oom) continue;  // failed history runs have no label

        core::TrainJob job;
        job.model_name = model_name;
        job.batch_size = batch;
        job.optimizer = optimizer;
        rows.push_back(features(job, device));
        targets.push_back(static_cast<double>(result.peak_job_bytes) /
                          static_cast<double>(util::kGiB));
      }
    }
  }
  history_size_ = rows.size();
  gbm_.fit(rows, targets);
}

core::EstimateResult SchedTuneEstimator::compute(
    const core::TrainJob& job, const gpu::DeviceModel& device) {
  const double predicted_gib = gbm_.predict(features(job, device));
  core::EstimateResult result;
  result.estimated_peak = static_cast<std::int64_t>(
      std::max(predicted_gib, 0.01) * static_cast<double>(util::kGiB));
  result.oom_predicted = result.estimated_peak > device.job_budget();
  return result;
}

}  // namespace xmem::baselines
