// SchedTune reimplementation (data-driven baseline).
//
// SchedTune predicts memory from model/hardware features with a pre-trained
// boosted-tree model. Our reimplementation trains its GBM once, at
// construction, on a deterministic "historical" dataset: ground-truth runs
// of the pre-2021 subset of the zoo (VGG16, ResNet101, MobileNetV2,
// MnasNet, distilgpt2, gpt2, T5-small). Evaluation models outside that
// history exercise the cold-start weakness the paper highlights (§5.2):
// tree ensembles cannot extrapolate past their training support, so unseen
// families — and especially the ~1B-parameter Transformers — are badly
// mispredicted.
#pragma once

#include <memory>
#include <vector>

#include "baselines/gbm.h"
#include "core/estimator_api.h"

namespace xmem::baselines {

struct SchedTuneOptions {
  /// Seed for the historical-run generator (jitter of the training runs).
  std::uint64_t history_seed = 17;
  GbmConfig gbm;
};

class SchedTuneEstimator final : public core::Estimator {
 public:
  explicit SchedTuneEstimator(SchedTuneOptions options = {});

  std::string name() const override { return "SchedTune"; }

  /// Feature extraction is public for tests: (log params, layer count,
  /// batch, family flag, per-param optimizer state words, hidden dim, vocab
  /// size, sequence length, device capacity).
  static std::vector<double> features(const core::TrainJob& job,
                                      const gpu::DeviceModel& device);

  std::size_t history_size() const { return history_size_; }

 protected:
  core::EstimateResult compute(const core::TrainJob& job,
                               const gpu::DeviceModel& device) override;

 private:
  void train(const SchedTuneOptions& options);

  GbmRegressor gbm_;
  std::size_t history_size_ = 0;
};

}  // namespace xmem::baselines
