// Minimal gradient-boosted regression trees (least-squares boosting).
//
// SchedTune-style estimators are "pre-trained ML models over model/hardware
// features"; this is the learner backing our reimplementation. It is a
// standard GBM: each round fits a depth-limited regression tree to the
// current residuals with greedy variance-reduction splits, then shrinks its
// contribution by the learning rate. Deterministic: no row/feature
// subsampling.
#pragma once

#include <cstddef>
#include <vector>

namespace xmem::baselines {

struct GbmConfig {
  int rounds = 80;
  int max_depth = 3;
  double learning_rate = 0.1;
  int min_samples_leaf = 3;
  /// Candidate split thresholds per feature (quantile grid).
  int candidate_splits = 16;
};

class GbmRegressor {
 public:
  explicit GbmRegressor(GbmConfig config = {}) : config_(config) {}

  /// Fit on rows[i] (all the same length) with targets y[i].
  void fit(const std::vector<std::vector<double>>& rows,
           const std::vector<double>& y);

  double predict(const std::vector<double>& row) const;

  bool trained() const { return !trees_.empty() || base_initialized_; }
  std::size_t num_trees() const { return trees_.size(); }

 private:
  struct Node {
    int feature = -1;       ///< -1: leaf
    double threshold = 0.0; ///< go left when x[feature] <= threshold
    double value = 0.0;     ///< leaf prediction
    int left = -1;
    int right = -1;
  };
  struct Tree {
    std::vector<Node> nodes;
    double predict(const std::vector<double>& row) const;
  };

  Tree fit_tree(const std::vector<std::vector<double>>& rows,
                const std::vector<double>& residuals,
                const std::vector<std::size_t>& indices) const;
  int build_node(Tree& tree, const std::vector<std::vector<double>>& rows,
                 const std::vector<double>& residuals,
                 std::vector<std::size_t>& indices, int depth) const;

  GbmConfig config_;
  double base_prediction_ = 0.0;
  bool base_initialized_ = false;
  std::vector<Tree> trees_;
};

}  // namespace xmem::baselines
