#include "trace/trace.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace xmem::trace {

using util::Json;
using util::JsonObject;

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kPythonFunction: return "python_function";
    case EventKind::kUserAnnotation: return "user_annotation";
    case EventKind::kCpuOp: return "cpu_op";
    case EventKind::kCpuInstantEvent: return "cpu_instant_event";
  }
  return "unknown";
}

namespace {

EventKind kind_from_string(const std::string& s) {
  if (s == "python_function") return EventKind::kPythonFunction;
  if (s == "user_annotation") return EventKind::kUserAnnotation;
  if (s == "cpu_op") return EventKind::kCpuOp;
  if (s == "cpu_instant_event") return EventKind::kCpuInstantEvent;
  throw std::runtime_error("Trace: unknown event category '" + s + "'");
}

Json event_to_json(const TraceEvent& e) {
  JsonObject obj;
  obj["cat"] = Json(std::string(to_string(e.kind)));
  obj["name"] = Json(e.name);
  obj["pid"] = Json(0);
  obj["tid"] = Json(0);
  obj["ts"] = Json(e.ts);
  JsonObject args;
  args["Ev Idx"] = Json(e.id);
  switch (e.kind) {
    case EventKind::kCpuInstantEvent: {
      obj["ph"] = Json("i");
      obj["s"] = Json("t");
      args["Addr"] = Json(static_cast<std::int64_t>(e.addr));
      args["Bytes"] = Json(e.bytes);
      args["Total Allocated"] = Json(e.total_allocated);
      args["Device Id"] = Json(e.device_id);
      break;
    }
    case EventKind::kPythonFunction: {
      obj["ph"] = Json("X");
      obj["dur"] = Json(e.dur);
      args["Python id"] = Json(e.id);
      args["Python parent id"] = Json(e.parent_id);
      break;
    }
    case EventKind::kCpuOp: {
      obj["ph"] = Json("X");
      obj["dur"] = Json(e.dur);
      if (e.seq >= 0) args["Sequence number"] = Json(e.seq);
      args["Parent id"] = Json(e.parent_id);
      break;
    }
    case EventKind::kUserAnnotation: {
      obj["ph"] = Json("X");
      obj["dur"] = Json(e.dur);
      break;
    }
  }
  obj["args"] = Json(std::move(args));
  return Json(std::move(obj));
}

TraceEvent event_from_json(const Json& j) {
  TraceEvent e;
  e.kind = kind_from_string(j.get_string_or("cat", ""));
  e.name = j.get_string_or("name", "");
  e.ts = j.get_int_or("ts", 0);
  e.dur = j.get_int_or("dur", 0);
  if (j.contains("args")) {
    const Json& args = j.at("args");
    e.id = args.get_int_or("Ev Idx", args.get_int_or("Python id", -1));
    e.parent_id =
        args.get_int_or("Python parent id", args.get_int_or("Parent id", -1));
    e.seq = args.get_int_or("Sequence number", -1);
    e.addr = static_cast<std::uint64_t>(args.get_int_or("Addr", 0));
    e.bytes = args.get_int_or("Bytes", 0);
    e.total_allocated = args.get_int_or("Total Allocated", 0);
    e.device_id = static_cast<int>(args.get_int_or("Device Id", -1));
  }
  return e;
}

}  // namespace

Json Trace::to_json() const {
  JsonObject doc;
  doc["schemaVersion"] = Json(1);
  JsonObject props;
  props["xmem_schema_version"] = Json(kSchemaVersion);
  props["model"] = Json(model_name);
  props["optimizer"] = Json(optimizer_name);
  props["batch_size"] = Json(batch_size);
  props["iterations"] = Json(iterations);
  props["backend"] = Json(backend);
  doc["traceMeta"] = Json(std::move(props));
  Json events_json = Json::array();
  for (const auto& e : events) events_json.push_back(event_to_json(e));
  doc["traceEvents"] = std::move(events_json);
  return Json(std::move(doc));
}

void Trace::save(const std::string& path, int indent) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("Trace::save: cannot open " + path);
  }
  out << to_json_string(indent);
  if (!out) {
    throw std::runtime_error("Trace::save: write failed for " + path);
  }
}

Trace Trace::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("Trace::load: cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_json_string(buffer.str());
}

Trace Trace::from_json(const Json& doc) {
  if (!doc.is_object() || !doc.contains("traceEvents")) {
    throw std::runtime_error("Trace: document has no traceEvents array");
  }
  Trace t;
  t.schema_version = 0;  // legacy unless traceMeta says otherwise
  if (doc.contains("traceMeta")) {
    const Json& meta = doc.at("traceMeta");
    // Compat check: files without the field predate versioning (version 0)
    // and stay loadable; files from a newer writer are refused here rather
    // than misread event-by-event downstream.
    const std::int64_t version =
        meta.get_int_or("xmem_schema_version", 0);
    if (version < 0 || version > kSchemaVersion) {
      throw std::runtime_error(
          "Trace: unsupported xmem_schema_version " +
          std::to_string(version) + " (this build reads <= " +
          std::to_string(kSchemaVersion) + ")");
    }
    t.schema_version = static_cast<int>(version);
    t.model_name = meta.get_string_or("model", "");
    t.optimizer_name = meta.get_string_or("optimizer", "");
    t.batch_size = static_cast<int>(meta.get_int_or("batch_size", 0));
    t.iterations = static_cast<int>(meta.get_int_or("iterations", 0));
    t.backend = meta.get_string_or("backend", "");
  }
  const auto& arr = doc.at("traceEvents").as_array();
  t.events.reserve(arr.size());
  for (const auto& item : arr) t.events.push_back(event_from_json(item));
  return t;
}

}  // namespace xmem::trace
