// Profiler trace model.
//
// Mirrors the four PyTorch Profiler event categories the paper's Analyzer
// consumes (Section 3.2):
//
//   python_function   — module-level calls forming the call hierarchy
//   user_annotation   — training-loop phase markers (profiler.step,
//                       optimizer.zero_grad, dataloader.__next__, ...)
//   cpu_op            — computational kernels (aten::*) with start/duration
//                       and forward/backward sequence numbers
//   cpu_instant_event — memory allocation (+bytes) / deallocation (-bytes)
//                       events with addresses and timestamps
//
// Traces serialize to and parse from PyTorch-Profiler-style Chrome-trace
// JSON ({"schemaVersion":1, "traceEvents":[...]}); the xMem Analyzer
// consumes the JSON form, exactly as the paper's tool consumes profiler
// output files.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/sim_clock.h"

namespace xmem::trace {

enum class EventKind : std::uint8_t {
  kPythonFunction,
  kUserAnnotation,
  kCpuOp,
  kCpuInstantEvent,
};

const char* to_string(EventKind kind);

/// Well-known user_annotation names the Orchestrator keys on.
namespace annotation {
inline constexpr const char* kProfilerStep = "ProfilerStep";
inline constexpr const char* kZeroGrad = "Optimizer.zero_grad";
inline constexpr const char* kOptimizerStep = "Optimizer.step";
inline constexpr const char* kDataLoaderNext = "dataloader.__next__";
inline constexpr const char* kModelToDevice = "Module.to";
inline constexpr const char* kBackward = "autograd::engine::execute";
}  // namespace annotation

struct TraceEvent {
  EventKind kind = EventKind::kCpuOp;
  std::string name;
  util::TimeUs ts = 0;   ///< start timestamp (µs, simulated)
  util::TimeUs dur = 0;  ///< duration (0 for instant events)
  std::int64_t id = -1;  ///< unique event index ("Ev Idx")
  std::int64_t parent_id = -1;  ///< python_function parent ("Python parent id")
  std::int64_t seq = -1;  ///< fwd/bwd linkage ("Sequence number"), -1 = none

  // cpu_instant_event payload; unused (0) for the other kinds.
  std::uint64_t addr = 0;
  std::int64_t bytes = 0;            ///< >0 allocation, <0 deallocation
  std::int64_t total_allocated = 0;  ///< allocator running total after event
  int device_id = -1;                ///< -1 = CPU, >= 0 = CUDA ordinal

  util::TimeUs end_ts() const { return ts + dur; }

  bool is_allocation() const {
    return kind == EventKind::kCpuInstantEvent && bytes > 0;
  }
  bool is_deallocation() const {
    return kind == EventKind::kCpuInstantEvent && bytes < 0;
  }
};

/// A complete profiling session: ordered events plus run metadata.
struct Trace {
  /// Version of the xMem trace schema this writer emits (stored as
  /// `traceMeta.xmem_schema_version`; the top-level `schemaVersion` is the
  /// Chrome-trace field and stays fixed). Bump it whenever the event model
  /// changes shape, so old estimator builds refuse newer files instead of
  /// silently misreading them.
  static constexpr int kSchemaVersion = 1;

  std::string model_name;
  std::string optimizer_name;
  int batch_size = 0;
  int iterations = 0;
  std::string backend;  ///< "cpu" or "cuda"
  /// Schema version read back by from_json(): kSchemaVersion for current
  /// files, 0 for legacy files written before the field existed.
  int schema_version = kSchemaVersion;
  std::vector<TraceEvent> events;

  void add(TraceEvent event) { events.push_back(std::move(event)); }
  std::size_t size() const { return events.size(); }

  /// Serialize to PyTorch-Profiler-style Chrome-trace JSON.
  util::Json to_json() const;
  /// Parse a trace back from JSON; throws util::JsonParseError /
  /// std::runtime_error on malformed documents.
  static Trace from_json(const util::Json& doc);

  std::string to_json_string(int indent = -1) const {
    return to_json().dump(indent);
  }
  static Trace from_json_string(std::string_view text) {
    return from_json(util::Json::parse(text));
  }

  /// Write/read the JSON form to disk — the file-based handoff between the
  /// profiling host and the estimator the paper's deployment uses. save()
  /// throws std::runtime_error on I/O failure; load() also on parse errors.
  void save(const std::string& path, int indent = -1) const;
  static Trace load(const std::string& path);
};

}  // namespace xmem::trace
