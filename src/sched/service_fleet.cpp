// EstimationService::fleet lives here (not estimation_service.cpp) so the
// core service header only forward-declares the sched types — sched depends
// on core, never the other way around.
#include "core/estimation_service.h"
#include "sched/fleet_planner.h"

namespace xmem::core {

sched::FleetReport EstimationService::fleet(
    const sched::FleetRequest& request) {
  sched::FleetPlannerOptions options;
  options.threads = options_.threads;
  sched::FleetPlanner planner(*this, options);
  return planner.pack(request);
}

}  // namespace xmem::core
