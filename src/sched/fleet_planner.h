// Fleet packing: plan a queue of heterogeneous training jobs onto a
// heterogeneous GPU fleet from CPU-side estimates.
//
// The paper's motivation (§1) is cluster admission control: schedulers
// reserve whole GPUs because they cannot trust memory estimates. The
// FleetPlanner closes that loop — per-job peaks come through
// core::EstimationService (ONE CPU profile per *distinct* job archetype,
// however long the queue; `profiles_run == distinct_jobs` is the
// acceptance proof), a pluggable PackingPolicy turns those peaks plus a
// configurable headroom into placements, and jobs too big for any single
// card fall back to DistributedPlanner candidates consuming multiple
// slots of one pool.
//
// Three layers on top of the batch pack:
//   * pack(FleetRequest) -> FleetReport — placements, per-job
//     admit/defer/reject verdicts, fleet utilization/fragmentation stats;
//   * apply(JobArrival | JobFinish) — incremental re-planning against the
//     cached estimates (a trailing arrival under an order-preserving
//     policy touches at most one pool; everything else repacks with pure
//     integer arithmetic, zero new profiles);
//   * what_if(request, added_pools) — diff two packs of the same queue
//     ("what does adding 8xA100 buy?") sharing one archetype cache.
//
// Determinism contract matches sweep/plan: serial and ThreadPool-fanned
// packs produce byte-identical FleetReports (the fan-out only computes
// per-archetype estimates; packing itself is ordered integer arithmetic).
//
// Surfaces: EstimationService::fleet(), `xmem fleet REQUEST.json`, and the
// server's `fleet` data-plane method (docs/SCHEDULER.md).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/estimation_service.h"
#include "sched/packing_policy.h"

namespace xmem::sched {

/// One queue entry: a training job with an admission priority. Queue order
/// is priority-major (higher first), arrival-minor.
struct FleetJob {
  std::string id;  ///< unique; from_json fills "job-<index>" when absent
  core::TrainJob job;
  int priority = 0;

  static FleetJob from_json(const util::Json& json, std::size_t index);
  util::Json to_json() const;
};

/// `count` identical devices. The fleet is a list of pools; slot order —
/// the order first-fit scans — is pool-major, index-minor.
struct GpuPool {
  gpu::DeviceModel device;
  int count = 0;

  static GpuPool from_json(const util::Json& json, const std::string& context);
  util::Json to_json() const;
};

/// Safety margin added on top of the predicted peak before packing:
/// absolute bytes plus a percent of the prediction.
struct HeadroomRule {
  std::int64_t absolute_bytes = 0;
  int percent = 0;
};

/// Fleet headroom: one base rule, optionally overridden per device name.
struct HeadroomPolicy {
  HeadroomRule base;
  std::map<std::string, HeadroomRule> per_device;  ///< keyed by device name

  std::int64_t bytes_for(const std::string& device_name,
                         std::int64_t predicted_peak) const;

  static HeadroomPolicy from_json(const util::Json& json);
  util::Json to_json() const;
};

/// The full packing question: queue + fleet + policy knobs. JSON
/// round-trips through from_json/to_json — the schema `xmem fleet` and the
/// server's `fleet` method consume (docs/SCHEDULER.md).
struct FleetRequest {
  std::vector<FleetJob> jobs;
  std::vector<GpuPool> pools;
  /// Packing policy registry name (packing_policy.h).
  std::string policy = "first-fit";
  HeadroomPolicy headroom;
  std::string estimator = "xMem";
  std::string allocator = alloc::kDefaultBackendName;
  std::map<std::string, alloc::BackendKnobs> allocator_config;
  int profile_iterations = 3;
  /// GPU budget for the DistributedPlanner fallback when a job fits no
  /// single device. 1 disables multi-GPU placement.
  int max_gpus_per_job = 8;
  /// Forwarded to the plan fallback (core::PlanRequest::comm_overlap):
  /// simulate collectives as schedule-tied overlap windows and rank the
  /// fallback candidates by window-replayed peaks. Part of the archetype
  /// cache scope, so cached peaks never cross modes.
  bool comm_overlap = false;
  /// Forwarded to the plan fallback (core::PlanRequest::refine_all): replay
  /// every ranked decomposition instead of the top-K. Part of the archetype
  /// cache scope for the same reason as comm_overlap.
  bool refine_all = false;
  /// Same semantics as EstimateRequest::tenant.
  std::string tenant;
  /// Extra pools to diff against: non-empty asks pack() to attach a
  /// WhatIfDelta for "this fleet plus these pools".
  std::vector<GpuPool> what_if;

  static FleetRequest from_json(const util::Json& json);
  util::Json to_json() const;
};

enum class Verdict : std::uint8_t { kAdmit, kDefer, kReject };
const char* to_string(Verdict verdict);

/// One GPU slot granted to a job (one per rank for multi-GPU jobs).
struct Placement {
  std::size_t pool = 0;
  int index = 0;           ///< device index within the pool
  std::string device;      ///< pool's device name (for self-contained JSON)
  std::int64_t committed_bytes = 0;
};

/// Per-job answer. admit = placed; defer = feasible on an empty fleet but
/// not under the current load; reject = infeasible even empty (no single
/// device fits and no <= max_gpus_per_job split of any pool does either).
struct JobVerdict {
  std::string id;
  std::string label;
  int priority = 0;
  Verdict verdict = Verdict::kReject;
  bool supported = true;
  /// Predicted peak on the chosen (or best) device; per rank when gpus > 1.
  std::int64_t predicted_peak = 0;
  std::int64_t headroom_bytes = 0;
  std::int64_t demand_bytes = 0;  ///< predicted_peak + headroom
  int gpus = 0;                   ///< slots consumed (0 unless admitted)
  std::string split;              ///< "d2,t1,p2" when a plan fallback placed it
  std::vector<Placement> placements;
  std::string reason;  ///< set for defer/reject

  util::Json to_json() const;
};

/// Post-pack state of one GPU slot.
struct GpuState {
  std::size_t pool = 0;
  int index = 0;
  std::string device;
  std::int64_t budget_bytes = 0;
  std::int64_t committed_bytes = 0;
  std::int64_t predicted_bytes = 0;  ///< sum of placed jobs' predicted peaks
  int jobs = 0;

  util::Json to_json() const;
};

/// Fleet-level outcome. All percents are integer-truncated so reports stay
/// byte-identical across platforms. `utilization_pct` is predicted job
/// bytes over total budget — the number the whole-gpu baseline loses on;
/// `committed_pct` counts demand + headroom as committed by the policy;
/// `fragmentation_pct` is how scattered the free bytes are
/// (100 - 100 * largest_free / total_free).
struct FleetStats {
  int gpus_total = 0;
  int gpus_used = 0;
  int jobs = 0;
  int admitted = 0;
  int deferred = 0;
  int rejected = 0;
  int distinct_jobs = 0;  ///< distinct archetypes in the queue
  std::int64_t total_budget_bytes = 0;
  std::int64_t committed_bytes = 0;
  std::int64_t predicted_bytes = 0;  ///< admitted jobs' predicted peaks
  std::int64_t waste_bytes = 0;      ///< committed - predicted
  int utilization_pct = 0;
  int committed_pct = 0;
  int fragmentation_pct = 0;

  util::Json to_json() const;
};

/// Diff of two packs of the same queue: the base fleet vs base + added
/// pools. Shares the archetype cache, so the second pack costs zero
/// profiles.
struct WhatIfDelta {
  std::vector<GpuPool> added_pools;
  int admitted_delta = 0;
  int deferred_delta = 0;
  int rejected_delta = 0;
  int utilization_pct_delta = 0;
  /// Job ids whose verdict improved to admit with the added pools.
  std::vector<std::string> newly_admitted;
  FleetStats stats_after;

  util::Json to_json() const;
};

/// Estimation / packing work performed, proving the profile-once win:
/// `profiles_run == distinct_jobs` on a cold session, regardless of queue
/// length; incremental applies show `estimates_reused` instead.
struct FleetCounters {
  std::size_t profiles_run = 0;
  std::size_t profile_cache_hits = 0;
  std::size_t replays_run = 0;
  std::size_t result_cache_hits = 0;
  std::size_t plans_run = 0;        ///< DistributedPlanner fallback searches
  std::size_t estimates_reused = 0; ///< jobs served from the archetype cache
  std::size_t pools_repacked = 0;   ///< pools the last pack/apply touched

  util::Json to_json() const;
};

struct FleetReport {
  std::string policy;
  std::vector<GpuPool> pools;
  std::vector<JobVerdict> verdicts;  ///< arrival order (not packing order)
  std::vector<GpuState> gpus;        ///< slot order
  FleetStats stats;
  FleetCounters counters;
  std::optional<WhatIfDelta> what_if;
  double wall_seconds = 0.0;

  /// `include_timings=false` omits wall_seconds, leaving the deterministic
  /// payload (golden diffs, serial-vs-threaded identity, server replies).
  util::Json to_json(bool include_timings = true) const;
};

/// Incremental events. Arrival ids must be unique (empty = auto-assigned);
/// finishing an unknown id throws std::invalid_argument.
struct JobArrival {
  FleetJob job;
};
struct JobFinish {
  std::string id;
};

struct FleetPlannerOptions {
  /// Worker threads for the per-archetype estimate fan-out. 0 = hardware
  /// default (capped at 8); 1 = fully serial on the caller's thread —
  /// byte-identical reports either way.
  std::size_t threads = 0;
};

/// Packs fleets through an EstimationService. Holds the archetype cache
/// and the last pack's state for incremental apply(); not thread-safe —
/// one planner per caller (the service's sweep/plan it calls into are).
class FleetPlanner {
 public:
  explicit FleetPlanner(core::EstimationService& service,
                        FleetPlannerOptions options = {});
  ~FleetPlanner();

  FleetPlanner(const FleetPlanner&) = delete;
  FleetPlanner& operator=(const FleetPlanner&) = delete;

  /// Batch-pack the request and seed the incremental state. Attaches a
  /// WhatIfDelta when request.what_if is non-empty.
  FleetReport pack(const FleetRequest& request);

  /// Incremental re-plan after pack(): a trailing-priority arrival under
  /// an order-preserving policy places only the new job (provably equal to
  /// a full repack); anything else repacks from cached estimates. The
  /// returned report's verdicts/gpus/stats equal a fresh pack of the same
  /// final queue; counters expose the reuse. Throws std::logic_error
  /// before any pack(), std::invalid_argument on duplicate/unknown ids.
  FleetReport apply(const JobArrival& event);
  FleetReport apply(const JobFinish& event);

  /// Diff request.pools vs request.pools + added_pools for the same queue.
  /// Does not disturb the incremental state.
  WhatIfDelta what_if(const FleetRequest& request,
                      const std::vector<GpuPool>& added_pools);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace xmem::sched
