// Pluggable bin-packing policies for the fleet planner, behind a
// name -> factory registry mirroring core/estimator_registry.h and
// alloc/backend_registry.h.
//
// The paper's motivation (§1) is admission control: schedulers reserve
// whole GPUs because they cannot trust memory estimates. A packing policy
// encodes exactly that trust decision — how many bytes a job commits on a
// GPU, in what order the queue is packed, and which of the feasible GPUs
// it lands on. The three built-ins bracket the design space:
//
//   whole-gpu            — one job per GPU, no sharing (today's
//                          conservative default; the baseline every
//                          estimate-driven policy is measured against)
//   first-fit            — commit predicted peak + headroom; scan GPUs in
//                          fleet order, take the first that fits
//   best-fit-decreasing  — sort each priority class by predicted bytes
//                          descending, place each job on the feasible GPU
//                          with the least leftover space (classic BFD:
//                          packs tighter when small early arrivals would
//                          otherwise squat where big jobs must go, but a
//                          heuristic, not a dominance theorem — a queue of
//                          many small jobs can admit more under first-fit)
//
// Policies are pure slot arithmetic: deterministic, allocation-free on the
// hot path, and oblivious to where the demand numbers came from. The
// FleetPlanner owns estimation; a policy only ever sees bytes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace xmem::sched {

/// One GPU's packing state: what the policy has committed out of its
/// job budget. `pool`/`index` identify the physical slot
/// (FleetRequest::pools[pool], device index within the pool).
struct SlotState {
  std::size_t pool = 0;
  int index = 0;
  std::int64_t budget = 0;     ///< device job budget (capacity - residues)
  std::int64_t committed = 0;  ///< bytes committed by placed jobs
  int jobs = 0;                ///< jobs placed on this slot

  std::int64_t free_bytes() const { return budget - committed; }
};

class PackingPolicy {
 public:
  virtual ~PackingPolicy() = default;

  /// Reorder job indices for packing. `order` arrives priority-major,
  /// arrival-minor (the queue contract) and must stay a permutation;
  /// `predicted_bytes[i]` is job i's device-independent predicted peak.
  /// Default: keep the queue order.
  virtual void reorder(std::vector<std::size_t>& order,
                       const std::vector<std::int64_t>& predicted_bytes) const;

  /// True when packing processes jobs in queue order (reorder is the
  /// identity). The incremental planner places a JobArrival against the
  /// existing state without disturbing prior placements only for
  /// order-preserving policies; the others repack from cached estimates.
  virtual bool order_preserving() const { return true; }

  /// Bytes a job with demand `demand_bytes` (predicted peak + headroom)
  /// commits on `slot` if placed there. The whole-gpu baseline overrides
  /// this to the slot's full budget.
  virtual std::int64_t commit_bytes(std::int64_t demand_bytes,
                                    const SlotState& slot) const;

  /// Pick a slot, or -1 when none fits. `demand_bytes[i]` is the job's
  /// demand *on slot i* — per-slot because headroom (and hence demand)
  /// varies with the device model under a heterogeneous fleet. Must be
  /// deterministic; ties break toward the lowest slot index so serial and
  /// threaded packs agree.
  virtual int choose(const std::vector<SlotState>& slots,
                     const std::vector<std::int64_t>& demand_bytes) const = 0;
};

using PackingPolicyFactory = std::function<std::unique_ptr<PackingPolicy>()>;

/// Register a policy. Throws std::invalid_argument on duplicate or empty
/// names and null factories. Extensions registered here immediately work
/// in FleetRequest::policy, `xmem fleet`, and the server's fleet method.
void register_packing_policy(const std::string& name,
                             const std::string& description,
                             PackingPolicyFactory factory);

bool is_known_packing_policy(const std::string& name);

/// Registered names, sorted.
std::vector<std::string> packing_policy_names();

std::string packing_policy_description(const std::string& name);

/// Construct a policy by name; throws std::invalid_argument listing the
/// registered names when unknown.
std::unique_ptr<PackingPolicy> make_packing_policy(const std::string& name);

}  // namespace xmem::sched
