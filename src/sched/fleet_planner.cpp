#include "sched/fleet_planner.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <limits>
#include <set>
#include <stdexcept>
#include <utility>

#include "core/estimator_registry.h"
#include "util/thread_pool.h"

namespace xmem::sched {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Queue-level archetype identity: two jobs with the same label + seed
/// share one CPU profile (and one planner cache entry).
std::string job_key(const core::TrainJob& job) {
  return job.label() + "|seed" + std::to_string(job.seed);
}

HeadroomRule headroom_rule_from_json(const util::Json& json,
                                     const std::string& context) {
  if (!json.is_object()) {
    throw std::invalid_argument(context + ": headroom rules must be objects");
  }
  HeadroomRule rule;
  rule.absolute_bytes = json.get_int_or("absolute_bytes", 0);
  rule.percent = static_cast<int>(json.get_int_or("percent", 0));
  if (rule.absolute_bytes < 0) {
    throw std::invalid_argument(context +
                                ": headroom \"absolute_bytes\" must be >= 0");
  }
  if (rule.percent < 0) {
    throw std::invalid_argument(context +
                                ": headroom \"percent\" must be >= 0");
  }
  return rule;
}

util::Json headroom_rule_to_json(const HeadroomRule& rule) {
  util::Json json = util::Json::object();
  json["absolute_bytes"] = util::Json(rule.absolute_bytes);
  json["percent"] = util::Json(rule.percent);
  return json;
}

util::Json device_to_json(const gpu::DeviceModel& device) {
  return core::devices_to_json({device}).as_array().front();
}

}  // namespace

const char* to_string(Verdict verdict) {
  switch (verdict) {
    case Verdict::kAdmit:
      return "admit";
    case Verdict::kDefer:
      return "defer";
    case Verdict::kReject:
      return "reject";
  }
  return "reject";
}

FleetJob FleetJob::from_json(const util::Json& json, std::size_t index) {
  const std::string context = "fleet request jobs[" + std::to_string(index) +
                              "]";
  if (!json.is_object()) {
    throw std::invalid_argument(context + ": entries must be objects");
  }
  if (!json.contains("job")) {
    throw std::invalid_argument(context + ": missing \"job\" object");
  }
  FleetJob fleet_job;
  fleet_job.job = core::job_from_json(json.at("job"));
  fleet_job.id = json.get_string_or("id", "job-" + std::to_string(index));
  fleet_job.priority = static_cast<int>(json.get_int_or("priority", 0));
  return fleet_job;
}

util::Json FleetJob::to_json() const {
  util::Json json = util::Json::object();
  json["id"] = util::Json(id);
  json["job"] = core::job_to_json(job);
  json["priority"] = util::Json(priority);
  return json;
}

GpuPool GpuPool::from_json(const util::Json& json,
                           const std::string& context) {
  if (!json.is_object()) {
    throw std::invalid_argument(context + ": pool entries must be objects");
  }
  if (!json.contains("device")) {
    throw std::invalid_argument(context + ": missing \"device\"");
  }
  GpuPool pool;
  pool.device = core::device_from_json(json.at("device"));
  pool.count = static_cast<int>(json.get_int_or("count", 0));
  if (pool.count <= 0) {
    throw std::invalid_argument(context + ": \"count\" must be > 0");
  }
  return pool;
}

util::Json GpuPool::to_json() const {
  util::Json json = util::Json::object();
  json["device"] = device_to_json(device);
  json["count"] = util::Json(count);
  return json;
}

std::int64_t HeadroomPolicy::bytes_for(const std::string& device_name,
                                       std::int64_t predicted_peak) const {
  const auto it = per_device.find(device_name);
  const HeadroomRule& rule = it == per_device.end() ? base : it->second;
  return rule.absolute_bytes + predicted_peak * rule.percent / 100;
}

HeadroomPolicy HeadroomPolicy::from_json(const util::Json& json) {
  HeadroomPolicy policy;
  policy.base = headroom_rule_from_json(json, "fleet request");
  if (json.contains("per_device")) {
    const util::Json& overrides = json.at("per_device");
    if (!overrides.is_object()) {
      throw std::invalid_argument(
          "fleet request: headroom \"per_device\" must be an object keyed by "
          "device name");
    }
    for (const auto& [name, rule] : overrides.as_object()) {
      policy.per_device[name] = headroom_rule_from_json(
          rule, "fleet request: headroom per_device." + name);
    }
  }
  return policy;
}

util::Json HeadroomPolicy::to_json() const {
  util::Json json = headroom_rule_to_json(base);
  if (!per_device.empty()) {
    util::Json overrides = util::Json::object();
    for (const auto& [name, rule] : per_device) {
      overrides[name] = headroom_rule_to_json(rule);
    }
    json["per_device"] = std::move(overrides);
  }
  return json;
}

FleetRequest FleetRequest::from_json(const util::Json& json) {
  if (!json.is_object()) {
    throw std::invalid_argument("fleet request: top level must be an object");
  }
  FleetRequest request;
  if (!json.contains("jobs") || !json.at("jobs").is_array() ||
      json.at("jobs").size() == 0) {
    throw std::invalid_argument(
        "fleet request: \"jobs\" must be a non-empty array");
  }
  const util::JsonArray& jobs = json.at("jobs").as_array();
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    request.jobs.push_back(FleetJob::from_json(jobs[i], i));
  }
  if (!json.contains("pools") || !json.at("pools").is_array() ||
      json.at("pools").size() == 0) {
    throw std::invalid_argument(
        "fleet request: \"pools\" must be a non-empty array");
  }
  const util::JsonArray& pools = json.at("pools").as_array();
  for (std::size_t i = 0; i < pools.size(); ++i) {
    request.pools.push_back(GpuPool::from_json(
        pools[i], "fleet request pools[" + std::to_string(i) + "]"));
  }
  request.policy = json.get_string_or("policy", "first-fit");
  if (json.contains("headroom")) {
    request.headroom = HeadroomPolicy::from_json(json.at("headroom"));
  }
  request.estimator = json.get_string_or("estimator", "xMem");
  request.allocator =
      json.get_string_or("allocator", alloc::kDefaultBackendName);
  if (json.contains("allocator_config")) {
    request.allocator_config = core::allocator_config_from_json(
        json.at("allocator_config"), "fleet request");
  }
  request.profile_iterations =
      static_cast<int>(json.get_int_or("profile_iterations", 3));
  request.max_gpus_per_job =
      static_cast<int>(json.get_int_or("max_gpus_per_job", 8));
  if (json.contains("comm_overlap")) {
    if (!json.at("comm_overlap").is_bool()) {
      throw std::invalid_argument(
          "fleet request: \"comm_overlap\" must be a boolean (true makes "
          "the multi-GPU plan fallback simulate collectives as overlap "
          "windows; omit it or pass false for resident staging buffers)");
    }
    request.comm_overlap = json.at("comm_overlap").as_bool();
  }
  if (json.contains("refine_all")) {
    if (!json.at("refine_all").is_bool()) {
      throw std::invalid_argument(
          "fleet request: \"refine_all\" must be a boolean (true makes the "
          "multi-GPU plan fallback replay every ranked decomposition instead "
          "of the top-K)");
    }
    request.refine_all = json.at("refine_all").as_bool();
  }
  request.tenant = json.get_string_or("tenant", "");
  if (json.contains("what_if")) {
    if (!json.at("what_if").is_array()) {
      throw std::invalid_argument(
          "fleet request: \"what_if\" must be an array of pools");
    }
    const util::JsonArray& added = json.at("what_if").as_array();
    for (std::size_t i = 0; i < added.size(); ++i) {
      request.what_if.push_back(GpuPool::from_json(
          added[i], "fleet request what_if[" + std::to_string(i) + "]"));
    }
  }
  return request;
}

util::Json FleetRequest::to_json() const {
  util::Json json = util::Json::object();
  util::Json job_array = util::Json::array();
  for (const FleetJob& fleet_job : jobs) job_array.push_back(fleet_job.to_json());
  json["jobs"] = std::move(job_array);
  util::Json pool_array = util::Json::array();
  for (const GpuPool& pool : pools) pool_array.push_back(pool.to_json());
  json["pools"] = std::move(pool_array);
  json["policy"] = util::Json(policy);
  json["headroom"] = headroom.to_json();
  json["estimator"] = util::Json(estimator);
  json["allocator"] = util::Json(allocator);
  if (!allocator_config.empty()) {
    json["allocator_config"] = core::allocator_config_to_json(allocator_config);
  }
  json["profile_iterations"] = util::Json(profile_iterations);
  json["max_gpus_per_job"] = util::Json(max_gpus_per_job);
  // Emitted only when set so resident-mode documents round-trip unchanged.
  if (comm_overlap) json["comm_overlap"] = util::Json(true);
  if (refine_all) json["refine_all"] = util::Json(true);
  if (!tenant.empty()) json["tenant"] = util::Json(tenant);
  if (!what_if.empty()) {
    util::Json added = util::Json::array();
    for (const GpuPool& pool : what_if) added.push_back(pool.to_json());
    json["what_if"] = std::move(added);
  }
  return json;
}

util::Json JobVerdict::to_json() const {
  util::Json json = util::Json::object();
  json["id"] = util::Json(id);
  json["label"] = util::Json(label);
  json["priority"] = util::Json(priority);
  json["verdict"] = util::Json(to_string(verdict));
  json["supported"] = util::Json(supported);
  if (supported) {
    json["predicted_peak_bytes"] = util::Json(predicted_peak);
    json["headroom_bytes"] = util::Json(headroom_bytes);
    json["demand_bytes"] = util::Json(demand_bytes);
    json["gpus"] = util::Json(gpus);
    if (!split.empty()) json["split"] = util::Json(split);
  }
  if (!placements.empty()) {
    util::Json placed = util::Json::array();
    for (const Placement& placement : placements) {
      util::Json entry = util::Json::object();
      entry["pool"] = util::Json(static_cast<std::int64_t>(placement.pool));
      entry["index"] = util::Json(placement.index);
      entry["device"] = util::Json(placement.device);
      entry["committed_bytes"] = util::Json(placement.committed_bytes);
      placed.push_back(std::move(entry));
    }
    json["placements"] = std::move(placed);
  }
  if (!reason.empty()) json["reason"] = util::Json(reason);
  return json;
}

util::Json GpuState::to_json() const {
  util::Json json = util::Json::object();
  json["pool"] = util::Json(static_cast<std::int64_t>(pool));
  json["index"] = util::Json(index);
  json["device"] = util::Json(device);
  json["budget_bytes"] = util::Json(budget_bytes);
  json["committed_bytes"] = util::Json(committed_bytes);
  json["predicted_bytes"] = util::Json(predicted_bytes);
  json["jobs"] = util::Json(jobs);
  return json;
}

util::Json FleetStats::to_json() const {
  util::Json json = util::Json::object();
  json["gpus_total"] = util::Json(gpus_total);
  json["gpus_used"] = util::Json(gpus_used);
  json["jobs"] = util::Json(jobs);
  json["admitted"] = util::Json(admitted);
  json["deferred"] = util::Json(deferred);
  json["rejected"] = util::Json(rejected);
  json["distinct_jobs"] = util::Json(distinct_jobs);
  json["total_budget_bytes"] = util::Json(total_budget_bytes);
  json["committed_bytes"] = util::Json(committed_bytes);
  json["predicted_bytes"] = util::Json(predicted_bytes);
  json["waste_bytes"] = util::Json(waste_bytes);
  json["utilization_pct"] = util::Json(utilization_pct);
  json["committed_pct"] = util::Json(committed_pct);
  json["fragmentation_pct"] = util::Json(fragmentation_pct);
  return json;
}

util::Json FleetCounters::to_json() const {
  util::Json json = util::Json::object();
  json["profiles_run"] = util::Json(static_cast<std::int64_t>(profiles_run));
  json["profile_cache_hits"] =
      util::Json(static_cast<std::int64_t>(profile_cache_hits));
  json["replays_run"] = util::Json(static_cast<std::int64_t>(replays_run));
  json["result_cache_hits"] =
      util::Json(static_cast<std::int64_t>(result_cache_hits));
  json["plans_run"] = util::Json(static_cast<std::int64_t>(plans_run));
  json["estimates_reused"] =
      util::Json(static_cast<std::int64_t>(estimates_reused));
  json["pools_repacked"] =
      util::Json(static_cast<std::int64_t>(pools_repacked));
  return json;
}

util::Json WhatIfDelta::to_json() const {
  util::Json json = util::Json::object();
  util::Json added = util::Json::array();
  for (const GpuPool& pool : added_pools) added.push_back(pool.to_json());
  json["added_pools"] = std::move(added);
  json["admitted_delta"] = util::Json(admitted_delta);
  json["deferred_delta"] = util::Json(deferred_delta);
  json["rejected_delta"] = util::Json(rejected_delta);
  json["utilization_pct_delta"] = util::Json(utilization_pct_delta);
  util::Json ids = util::Json::array();
  for (const std::string& id : newly_admitted) ids.push_back(util::Json(id));
  json["newly_admitted"] = std::move(ids);
  json["stats_after"] = stats_after.to_json();
  return json;
}

util::Json FleetReport::to_json(bool include_timings) const {
  util::Json json = util::Json::object();
  json["policy"] = util::Json(policy);
  util::Json pool_array = util::Json::array();
  for (const GpuPool& pool : pools) pool_array.push_back(pool.to_json());
  json["pools"] = std::move(pool_array);
  util::Json verdict_array = util::Json::array();
  for (const JobVerdict& verdict : verdicts) {
    verdict_array.push_back(verdict.to_json());
  }
  json["verdicts"] = std::move(verdict_array);
  util::Json gpu_array = util::Json::array();
  for (const GpuState& gpu : gpus) gpu_array.push_back(gpu.to_json());
  json["gpus"] = std::move(gpu_array);
  json["stats"] = stats.to_json();
  json["counters"] = counters.to_json();
  if (what_if.has_value()) json["what_if"] = what_if->to_json();
  if (include_timings) json["wall_seconds"] = util::Json(wall_seconds);
  return json;
}

// ---------------------------------------------------------------------------
// FleetPlanner internals
// ---------------------------------------------------------------------------

namespace {

/// A DistributedPlanner candidate reduced to what packing needs. Rank peaks
/// are device-independent (component arithmetic / unbounded replay), so one
/// number per candidate serves every pool.
struct PlanCandidateLite {
  int data_parallel = 1;
  int tensor_parallel = 1;
  int pipeline_stages = 1;
  int gpus = 1;
  std::int64_t rank_peak = 0;
};

struct Archetype {
  bool supported = true;
  std::map<std::string, std::int64_t> peak_by_device;
  /// Plan-fallback candidates keyed by the request's max_gpus_per_job.
  std::map<int, std::vector<PlanCandidateLite>> plans;
};

struct PackResult {
  std::vector<SlotState> slots;
  std::vector<std::int64_t> slot_predicted;  ///< parallel to slots
  std::vector<JobVerdict> verdicts;          ///< parallel to request.jobs
  FleetStats stats;
};

}  // namespace

struct FleetPlanner::Impl {
  core::EstimationService& service;
  FleetPlannerOptions options;
  std::unique_ptr<util::ThreadPool> pool;  ///< null when serial

  /// Archetype cache, keyed by estimation scope + job identity. Shared by
  /// pack/apply/what_if — the what-if second pack costs zero profiles.
  std::map<std::string, Archetype> cache;

  bool has_state = false;
  FleetRequest state_request;  ///< jobs hold materialized unique ids
  PackResult state_result;
  std::size_t next_auto_id = 0;

  Impl(core::EstimationService& service_in, FleetPlannerOptions options_in)
      : service(service_in), options(options_in) {
    const std::size_t threads = options.threads == 0
                                    ? util::ThreadPool::default_threads()
                                    : options.threads;
    if (threads > 1) pool = std::make_unique<util::ThreadPool>(threads);
  }

  /// Estimation knobs that change what an estimate means — part of the
  /// cache key so a planner reused across requests never serves stale peaks.
  static std::string request_scope(const FleetRequest& request) {
    return request.estimator + "|" + request.allocator + "|" +
           core::allocator_config_to_json(request.allocator_config).dump() +
           "|i" + std::to_string(request.profile_iterations) +
           (request.comm_overlap ? "|ow1" : "|ow0") +
           (request.refine_all ? "|ra1" : "|ra0");
  }

  static std::string archetype_key(const FleetRequest& request,
                                   const core::TrainJob& job) {
    return request_scope(request) + "|" + job_key(job);
  }

  void materialize_ids(FleetRequest& request) const {
    for (std::size_t i = 0; i < request.jobs.size(); ++i) {
      if (request.jobs[i].id.empty()) {
        request.jobs[i].id = "job-" + std::to_string(i);
      }
    }
  }

  static void validate(const FleetRequest& request) {
    if (request.jobs.empty()) {
      throw std::invalid_argument(
          "fleet request: \"jobs\" must be a non-empty array");
    }
    if (request.pools.empty()) {
      throw std::invalid_argument(
          "fleet request: \"pools\" must be a non-empty array");
    }
    std::set<std::string> ids;
    for (const FleetJob& fleet_job : request.jobs) {
      if (!ids.insert(fleet_job.id).second) {
        throw std::invalid_argument("fleet request: duplicate job id '" +
                                    fleet_job.id + "'");
      }
    }
    auto check_pool = [](const GpuPool& gpu_pool) {
      if (gpu_pool.count <= 0) {
        throw std::invalid_argument("fleet request: pool \"count\" must be "
                                    "> 0");
      }
      if (gpu_pool.device.job_budget() <= 0) {
        throw std::invalid_argument("fleet request: device '" +
                                    gpu_pool.device.name +
                                    "' has a non-positive job budget");
      }
    };
    for (const GpuPool& gpu_pool : request.pools) check_pool(gpu_pool);
    for (const GpuPool& gpu_pool : request.what_if) check_pool(gpu_pool);
    // A device name is the estimate-cache key, so one name must mean one
    // geometry across the fleet (and the what-if pools).
    std::map<std::string, gpu::DeviceModel> by_name;
    auto check_geometry = [&by_name](const gpu::DeviceModel& device) {
      const auto [it, inserted] = by_name.emplace(device.name, device);
      if (!inserted && (it->second.capacity != device.capacity ||
                        it->second.m_init != device.m_init ||
                        it->second.m_fm != device.m_fm)) {
        throw std::invalid_argument("fleet request: device name '" +
                                    device.name +
                                    "' appears with conflicting geometry");
      }
    };
    for (const GpuPool& gpu_pool : request.pools) check_geometry(gpu_pool.device);
    for (const GpuPool& gpu_pool : request.what_if) check_geometry(gpu_pool.device);
    if (!core::is_known_estimator(request.estimator)) {
      std::string names;
      for (const std::string& name : core::estimator_names()) {
        if (!names.empty()) names += ", ";
        names += name;
      }
      throw std::invalid_argument("fleet request: unknown estimator '" +
                                  request.estimator + "' (known: " + names +
                                  ")");
    }
    make_packing_policy(request.policy);  // throws listing known policies
    if (!alloc::is_known_backend(request.allocator)) {
      throw std::invalid_argument("fleet request: unknown allocator '" +
                                  request.allocator + "'");
    }
    core::validate_allocator_config(request.allocator_config, "fleet request");
    if (request.profile_iterations <= 0) {
      throw std::invalid_argument(
          "fleet request: \"profile_iterations\" must be > 0");
    }
    if (request.max_gpus_per_job < 1) {
      throw std::invalid_argument(
          "fleet request: \"max_gpus_per_job\" must be >= 1");
    }
  }

  /// Distinct device models across the given pool lists, sorted by name.
  static std::vector<gpu::DeviceModel> distinct_devices(
      const std::vector<const std::vector<GpuPool>*>& pool_lists) {
    std::map<std::string, gpu::DeviceModel> by_name;
    for (const std::vector<GpuPool>* pools : pool_lists) {
      for (const GpuPool& gpu_pool : *pools) {
        by_name.emplace(gpu_pool.device.name, gpu_pool.device);
      }
    }
    std::vector<gpu::DeviceModel> devices;
    devices.reserve(by_name.size());
    for (const auto& [name, device] : by_name) devices.push_back(device);
    return devices;
  }

  /// Compute per-device peaks for every archetype in the queue that the
  /// cache does not already cover, fanning the sweeps on the pool. One
  /// sweep (== one CPU profile, cold) per fresh archetype.
  void ensure_archetypes(const FleetRequest& request,
                         const std::vector<gpu::DeviceModel>& devices,
                         FleetCounters& counters) {
    struct Need {
      std::string key;
      core::TrainJob job;
      std::vector<gpu::DeviceModel> missing;
    };
    std::vector<Need> needs;
    std::set<std::string> seen;
    for (const FleetJob& fleet_job : request.jobs) {
      const std::string key = archetype_key(request, fleet_job.job);
      if (!seen.insert(key).second) continue;
      std::vector<gpu::DeviceModel> missing;
      const auto it = cache.find(key);
      if (it == cache.end()) {
        missing = devices;
      } else {
        for (const gpu::DeviceModel& device : devices) {
          if (it->second.peak_by_device.count(device.name) == 0) {
            missing.push_back(device);
          }
        }
      }
      if (!missing.empty()) needs.push_back({key, fleet_job.job, missing});
    }
    counters.estimates_reused += request.jobs.size() - needs.size();

    auto run_one = [this, &request](const Need& need) {
      core::EstimateRequest estimate;
      estimate.job = need.job;
      estimate.devices = need.missing;
      estimate.allocators = {request.allocator};
      estimate.estimators = {request.estimator};
      estimate.allocator_config = request.allocator_config;
      estimate.profile_iterations = request.profile_iterations;
      estimate.tenant = request.tenant;
      return service.sweep(estimate);
    };

    std::vector<core::EstimateReport> reports(needs.size());
    if (pool && needs.size() > 1) {
      std::vector<std::future<core::EstimateReport>> futures;
      futures.reserve(needs.size());
      for (const Need& need : needs) {
        futures.push_back(pool->submit([&run_one, &need] {
          return run_one(need);
        }));
      }
      for (std::size_t i = 0; i < futures.size(); ++i) {
        reports[i] = futures[i].get();
      }
    } else {
      for (std::size_t i = 0; i < needs.size(); ++i) {
        reports[i] = run_one(needs[i]);
      }
    }

    // Merge in need order so counter totals are thread-count-independent.
    for (std::size_t i = 0; i < needs.size(); ++i) {
      Archetype& archetype = cache[needs[i].key];
      for (const core::EstimateEntry& entry : reports[i].entries) {
        if (!entry.supported) archetype.supported = false;
        archetype.peak_by_device[entry.device] = entry.estimated_peak;
      }
      counters.profiles_run += reports[i].profiles_run;
      counters.profile_cache_hits += reports[i].profile_cache_hits;
      counters.replays_run += reports[i].replays_run;
      counters.result_cache_hits += reports[i].result_cache_hits;
    }
  }

  /// Multi-GPU fallback candidates for one archetype, cached per GPU
  /// budget. The search shares the archetype's profile through the session
  /// (profiles_run stays == distinct_jobs).
  const std::vector<PlanCandidateLite>& plan_for(
      const FleetRequest& request, const core::TrainJob& job,
      const std::vector<gpu::DeviceModel>& devices, FleetCounters& counters) {
    Archetype& archetype = cache[archetype_key(request, job)];
    const auto it = archetype.plans.find(request.max_gpus_per_job);
    if (it != archetype.plans.end()) return it->second;

    core::PlanRequest plan;
    plan.job = job;
    plan.devices = devices;
    plan.max_gpus = request.max_gpus_per_job;
    plan.allocator = request.allocator;
    plan.allocator_config = request.allocator_config;
    plan.profile_iterations = request.profile_iterations;
    plan.max_candidates = 16;
    plan.comm_overlap = request.comm_overlap;
    plan.refine_all = request.refine_all;
    plan.tenant = request.tenant;
    const core::PlanReport report = service.plan(plan);
    counters.plans_run += 1;
    counters.profiles_run += report.profiles_run;
    counters.profile_cache_hits += report.profile_cache_hits;
    counters.replays_run += report.replays_run;
    counters.result_cache_hits += report.result_cache_hits;

    std::vector<PlanCandidateLite> candidates;
    for (const core::PlanCandidate& candidate : report.candidates) {
      if (candidate.plan.gpus <= 1) continue;
      PlanCandidateLite lite;
      lite.data_parallel = candidate.plan.data_parallel;
      lite.tensor_parallel = candidate.plan.tensor_parallel;
      lite.pipeline_stages = candidate.plan.pipeline_stages;
      lite.gpus = candidate.plan.gpus;
      lite.rank_peak = candidate.replayed ? candidate.replayed_per_rank_peak
                                          : candidate.plan.per_rank_peak;
      candidates.push_back(lite);
    }
    return archetype.plans.emplace(request.max_gpus_per_job,
                                   std::move(candidates))
        .first->second;
  }

  static std::vector<std::size_t> pool_starts(
      const std::vector<GpuPool>& pools) {
    std::vector<std::size_t> starts(pools.size(), 0);
    std::size_t next = 0;
    for (std::size_t p = 0; p < pools.size(); ++p) {
      starts[p] = next;
      next += static_cast<std::size_t>(pools[p].count);
    }
    return starts;
  }

  /// Report fields for a job that was not placed: the cheapest-to-host
  /// fleet device (minimum demand; pool order breaks ties).
  static void fill_best_single(JobVerdict& verdict,
                               const std::vector<GpuPool>& pools,
                               const Archetype& archetype,
                               const HeadroomPolicy& headroom) {
    std::int64_t best_demand = -1;
    std::set<std::string> seen;
    for (const GpuPool& gpu_pool : pools) {
      const std::string& name = gpu_pool.device.name;
      if (!seen.insert(name).second) continue;
      const std::int64_t peak = archetype.peak_by_device.at(name);
      const std::int64_t demand = peak + headroom.bytes_for(name, peak);
      if (best_demand < 0 || demand < best_demand) {
        best_demand = demand;
        verdict.predicted_peak = peak;
        verdict.headroom_bytes = demand - peak;
        verdict.demand_bytes = demand;
      }
    }
  }

  /// Place one job against the current slots (the shared packing step of
  /// batch packs and incremental arrivals). Fills `verdict` and commits
  /// into `result` on admit.
  void place_job(const FleetRequest& request,
                 const std::vector<GpuPool>& pools,
                 const std::vector<std::size_t>& pool_start,
                 const std::vector<gpu::DeviceModel>& plan_devices,
                 const FleetJob& fleet_job, PackingPolicy& policy,
                 PackResult& result, FleetCounters& counters,
                 JobVerdict& verdict) {
    const core::TrainJob& job = fleet_job.job;
    verdict.id = fleet_job.id;
    verdict.label = job.label();
    verdict.priority = fleet_job.priority;
    const Archetype& archetype = cache.at(archetype_key(request, job));
    if (!archetype.supported) {
      verdict.supported = false;
      verdict.verdict = Verdict::kReject;
      verdict.reason = "estimator '" + request.estimator +
                       "' does not support this job";
      return;
    }

    std::vector<SlotState>& slots = result.slots;
    std::vector<std::int64_t> demands(slots.size(), 0);
    std::vector<std::int64_t> peaks(slots.size(), 0);
    for (std::size_t i = 0; i < slots.size(); ++i) {
      const std::string& name = pools[slots[i].pool].device.name;
      peaks[i] = archetype.peak_by_device.at(name);
      demands[i] = peaks[i] + request.headroom.bytes_for(name, peaks[i]);
    }

    // Would any fleet device host this job on an empty fleet? That line
    // separates defer (load problem) from the multi-GPU fallback.
    bool single_feasible_empty = false;
    for (std::size_t p = 0; p < pools.size() && !single_feasible_empty; ++p) {
      const std::size_t slot = pool_start[p];
      SlotState empty;
      empty.pool = p;
      empty.budget = slots[slot].budget;
      if (policy.commit_bytes(demands[slot], empty) <= empty.budget) {
        single_feasible_empty = true;
      }
    }

    if (single_feasible_empty) {
      const int chosen = policy.choose(slots, demands);
      if (chosen >= 0) {
        const std::int64_t commit =
            policy.commit_bytes(demands[chosen], slots[chosen]);
        slots[chosen].committed += commit;
        slots[chosen].jobs += 1;
        result.slot_predicted[chosen] += peaks[chosen];
        verdict.verdict = Verdict::kAdmit;
        verdict.gpus = 1;
        verdict.predicted_peak = peaks[chosen];
        verdict.headroom_bytes = demands[chosen] - peaks[chosen];
        verdict.demand_bytes = demands[chosen];
        Placement placement;
        placement.pool = slots[chosen].pool;
        placement.index = slots[chosen].index;
        placement.device = pools[slots[chosen].pool].device.name;
        placement.committed_bytes = commit;
        verdict.placements.push_back(placement);
      } else {
        fill_best_single(verdict, pools, archetype, request.headroom);
        verdict.verdict = Verdict::kDefer;
        verdict.reason = "no GPU fits demand " +
                         std::to_string(verdict.demand_bytes) +
                         " bytes under current load";
      }
      return;
    }

    // Multi-GPU fallback: DistributedPlanner candidates, ranks co-located
    // on one pool.
    fill_best_single(verdict, pools, archetype, request.headroom);
    if (request.max_gpus_per_job <= 1) {
      verdict.verdict = Verdict::kReject;
      verdict.reason = "fits no single GPU (min demand " +
                       std::to_string(verdict.demand_bytes) +
                       " bytes) and max_gpus_per_job=1 disables splitting";
      return;
    }
    const std::vector<PlanCandidateLite>& candidates =
        plan_for(request, job, plan_devices, counters);
    bool any_feasible_empty = false;
    for (const PlanCandidateLite& candidate : candidates) {
      for (std::size_t p = 0; p < pools.size(); ++p) {
        if (pools[p].count < candidate.gpus) continue;
        const std::string& name = pools[p].device.name;
        const std::int64_t budget = pools[p].device.job_budget();
        const std::int64_t demand =
            candidate.rank_peak +
            request.headroom.bytes_for(name, candidate.rank_peak);
        SlotState empty;
        empty.pool = p;
        empty.budget = budget;
        if (policy.commit_bytes(demand, empty) > budget) continue;
        any_feasible_empty = true;

        const std::size_t start = pool_start[p];
        const std::size_t count = static_cast<std::size_t>(pools[p].count);
        std::vector<SlotState> slice(slots.begin() + start,
                                     slots.begin() + start + count);
        std::vector<std::int64_t> slice_demands(count, demand);
        std::vector<int> chosen_local;
        std::vector<std::int64_t> commits;
        bool placed = true;
        for (int rank = 0; rank < candidate.gpus; ++rank) {
          const int chosen = policy.choose(slice, slice_demands);
          if (chosen < 0) {
            placed = false;
            break;
          }
          const std::int64_t commit =
              policy.commit_bytes(demand, slice[chosen]);
          slice[chosen].committed += commit;
          slice[chosen].jobs += 1;
          // Ranks need distinct GPUs: poison the chosen slot's demand so
          // the next rank cannot land on it again.
          slice_demands[chosen] = std::numeric_limits<std::int64_t>::max() / 2;
          chosen_local.push_back(chosen);
          commits.push_back(commit);
        }
        if (!placed) continue;

        std::copy(slice.begin(), slice.end(), slots.begin() + start);
        verdict.verdict = Verdict::kAdmit;
        verdict.gpus = candidate.gpus;
        verdict.predicted_peak = candidate.rank_peak;
        verdict.headroom_bytes = demand - candidate.rank_peak;
        verdict.demand_bytes = demand;
        verdict.split = "d" + std::to_string(candidate.data_parallel) + ",t" +
                        std::to_string(candidate.tensor_parallel) + ",p" +
                        std::to_string(candidate.pipeline_stages);
        for (std::size_t rank = 0; rank < chosen_local.size(); ++rank) {
          const std::size_t global = start + chosen_local[rank];
          result.slot_predicted[global] += candidate.rank_peak;
          Placement placement;
          placement.pool = p;
          placement.index = slots[global].index;
          placement.device = name;
          placement.committed_bytes = commits[rank];
          verdict.placements.push_back(placement);
        }
        return;
      }
    }
    if (any_feasible_empty) {
      verdict.verdict = Verdict::kDefer;
      verdict.reason =
          "no pool has enough free GPUs for a multi-GPU split under current "
          "load";
    } else {
      verdict.verdict = Verdict::kReject;
      verdict.reason = "fits no single GPU (min demand " +
                       std::to_string(verdict.demand_bytes) +
                       " bytes) and no split within " +
                       std::to_string(request.max_gpus_per_job) +
                       " GPUs fits any pool";
    }
  }

  static void compute_stats(const FleetRequest& request, PackResult& result) {
    FleetStats stats;
    stats.gpus_total = static_cast<int>(result.slots.size());
    std::int64_t total_free = 0;
    std::int64_t largest_free = 0;
    for (std::size_t i = 0; i < result.slots.size(); ++i) {
      const SlotState& slot = result.slots[i];
      stats.total_budget_bytes += slot.budget;
      stats.committed_bytes += slot.committed;
      stats.predicted_bytes += result.slot_predicted[i];
      if (slot.jobs > 0) stats.gpus_used += 1;
      total_free += slot.free_bytes();
      largest_free = std::max(largest_free, slot.free_bytes());
    }
    stats.jobs = static_cast<int>(result.verdicts.size());
    for (const JobVerdict& verdict : result.verdicts) {
      switch (verdict.verdict) {
        case Verdict::kAdmit:
          stats.admitted += 1;
          break;
        case Verdict::kDefer:
          stats.deferred += 1;
          break;
        case Verdict::kReject:
          stats.rejected += 1;
          break;
      }
    }
    std::set<std::string> distinct;
    for (const FleetJob& fleet_job : request.jobs) {
      distinct.insert(job_key(fleet_job.job));
    }
    stats.distinct_jobs = static_cast<int>(distinct.size());
    stats.waste_bytes = stats.committed_bytes - stats.predicted_bytes;
    if (stats.total_budget_bytes > 0) {
      stats.utilization_pct = static_cast<int>(
          100 * stats.predicted_bytes / stats.total_budget_bytes);
      stats.committed_pct = static_cast<int>(
          100 * stats.committed_bytes / stats.total_budget_bytes);
    }
    if (total_free > 0) {
      stats.fragmentation_pct =
          static_cast<int>(100 - 100 * largest_free / total_free);
    }
    result.stats = stats;
  }

  /// Pack the whole queue onto `pools`, mint-condition slots. Deterministic
  /// given the archetype cache: ordered integer arithmetic only.
  PackResult run_pack(const FleetRequest& request,
                      const std::vector<GpuPool>& pools,
                      const std::vector<gpu::DeviceModel>& plan_devices,
                      PackingPolicy& policy, FleetCounters& counters) {
    PackResult result;
    const std::vector<std::size_t> starts = pool_starts(pools);
    for (std::size_t p = 0; p < pools.size(); ++p) {
      for (int i = 0; i < pools[p].count; ++i) {
        SlotState slot;
        slot.pool = p;
        slot.index = i;
        slot.budget = pools[p].device.job_budget();
        result.slots.push_back(slot);
      }
    }
    result.slot_predicted.assign(result.slots.size(), 0);
    result.verdicts.resize(request.jobs.size());

    // Queue order: priority-major (higher first), arrival-minor; the policy
    // then reorders within each priority class (BFD sorts by bytes).
    std::vector<std::size_t> order(request.jobs.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&request](std::size_t a, std::size_t b) {
                       return request.jobs[a].priority >
                              request.jobs[b].priority;
                     });
    std::vector<std::int64_t> reference(request.jobs.size(), 0);
    for (std::size_t i = 0; i < request.jobs.size(); ++i) {
      const Archetype& archetype =
          cache.at(archetype_key(request, request.jobs[i].job));
      if (!archetype.supported) continue;
      std::set<std::string> seen;
      for (const GpuPool& gpu_pool : pools) {
        if (!seen.insert(gpu_pool.device.name).second) continue;
        reference[i] = std::max(
            reference[i], archetype.peak_by_device.at(gpu_pool.device.name));
      }
    }
    std::size_t seg = 0;
    while (seg < order.size()) {
      std::size_t end = seg + 1;
      while (end < order.size() && request.jobs[order[end]].priority ==
                                       request.jobs[order[seg]].priority) {
        ++end;
      }
      std::vector<std::size_t> segment(order.begin() + seg,
                                       order.begin() + end);
      policy.reorder(segment, reference);
      std::copy(segment.begin(), segment.end(), order.begin() + seg);
      seg = end;
    }

    for (const std::size_t index : order) {
      place_job(request, pools, starts, plan_devices, request.jobs[index],
                policy, result, counters, result.verdicts[index]);
    }
    compute_stats(request, result);
    return result;
  }

  FleetReport make_report(const FleetRequest& request,
                          const std::vector<GpuPool>& pools,
                          const PackResult& result,
                          const FleetCounters& counters) const {
    FleetReport report;
    report.policy = request.policy;
    report.pools = pools;
    report.verdicts = result.verdicts;
    for (std::size_t i = 0; i < result.slots.size(); ++i) {
      const SlotState& slot = result.slots[i];
      GpuState gpu;
      gpu.pool = slot.pool;
      gpu.index = slot.index;
      gpu.device = pools[slot.pool].device.name;
      gpu.budget_bytes = slot.budget;
      gpu.committed_bytes = slot.committed;
      gpu.predicted_bytes = result.slot_predicted[i];
      gpu.jobs = slot.jobs;
      report.gpus.push_back(gpu);
    }
    report.stats = result.stats;
    report.counters = counters;
    return report;
  }

  static WhatIfDelta make_delta(const std::vector<GpuPool>& added,
                                const PackResult& base,
                                const PackResult& after) {
    WhatIfDelta delta;
    delta.added_pools = added;
    delta.admitted_delta = after.stats.admitted - base.stats.admitted;
    delta.deferred_delta = after.stats.deferred - base.stats.deferred;
    delta.rejected_delta = after.stats.rejected - base.stats.rejected;
    delta.utilization_pct_delta =
        after.stats.utilization_pct - base.stats.utilization_pct;
    for (std::size_t i = 0; i < base.verdicts.size(); ++i) {
      if (base.verdicts[i].verdict != Verdict::kAdmit &&
          after.verdicts[i].verdict == Verdict::kAdmit) {
        delta.newly_admitted.push_back(base.verdicts[i].id);
      }
    }
    delta.stats_after = after.stats;
    return delta;
  }
};

FleetPlanner::FleetPlanner(core::EstimationService& service,
                           FleetPlannerOptions options)
    : impl_(std::make_unique<Impl>(service, options)) {}

FleetPlanner::~FleetPlanner() = default;

FleetReport FleetPlanner::pack(const FleetRequest& request) {
  const auto start = std::chrono::steady_clock::now();
  FleetRequest materialized = request;
  impl_->materialize_ids(materialized);
  Impl::validate(materialized);
  const std::unique_ptr<PackingPolicy> policy =
      make_packing_policy(materialized.policy);
  FleetCounters counters;
  const std::vector<gpu::DeviceModel> devices =
      Impl::distinct_devices({&materialized.pools, &materialized.what_if});
  impl_->ensure_archetypes(materialized, devices, counters);
  PackResult base = impl_->run_pack(materialized, materialized.pools, devices,
                                    *policy, counters);
  counters.pools_repacked = materialized.pools.size();
  FleetReport report =
      impl_->make_report(materialized, materialized.pools, base, counters);
  if (!materialized.what_if.empty()) {
    std::vector<GpuPool> augmented = materialized.pools;
    augmented.insert(augmented.end(), materialized.what_if.begin(),
                     materialized.what_if.end());
    // The second pack reuses the archetype cache end to end, so its
    // estimation cost is zero; report counters describe the base pack.
    FleetCounters what_if_counters;
    const PackResult after = impl_->run_pack(materialized, augmented, devices,
                                             *policy, what_if_counters);
    report.what_if = Impl::make_delta(materialized.what_if, base, after);
  }
  impl_->has_state = true;
  impl_->state_request = materialized;
  impl_->state_request.what_if.clear();
  impl_->state_result = std::move(base);
  impl_->next_auto_id = materialized.jobs.size();
  report.wall_seconds = seconds_since(start);
  return report;
}

FleetReport FleetPlanner::apply(const JobArrival& event) {
  const auto start = std::chrono::steady_clock::now();
  Impl& impl = *impl_;
  if (!impl.has_state) {
    throw std::logic_error("FleetPlanner::apply before pack()");
  }
  FleetJob job = event.job;
  auto id_taken = [&impl](const std::string& id) {
    for (const FleetJob& existing : impl.state_request.jobs) {
      if (existing.id == id) return true;
    }
    return false;
  };
  if (job.id.empty()) {
    do {
      job.id = "job-" + std::to_string(impl.next_auto_id);
      impl.next_auto_id += 1;
    } while (id_taken(job.id));
  } else if (id_taken(job.id)) {
    throw std::invalid_argument("fleet apply: duplicate job id '" + job.id +
                                "'");
  }

  const std::unique_ptr<PackingPolicy> policy =
      make_packing_policy(impl.state_request.policy);
  // Fast path: an order-preserving policy packs in queue order, so a new
  // job that sorts last (priority <= everything pending) is placed against
  // the existing state — provably equal to a full repack.
  bool sorts_last = true;
  for (const FleetJob& existing : impl.state_request.jobs) {
    if (existing.priority < job.priority) {
      sorts_last = false;
      break;
    }
  }
  const bool fast = policy->order_preserving() && sorts_last;

  impl.state_request.jobs.push_back(job);
  FleetCounters counters;
  const std::vector<gpu::DeviceModel> devices =
      Impl::distinct_devices({&impl.state_request.pools});
  impl.ensure_archetypes(impl.state_request, devices, counters);

  if (fast) {
    const std::vector<std::size_t> starts =
        Impl::pool_starts(impl.state_request.pools);
    impl.state_result.verdicts.emplace_back();
    impl.place_job(impl.state_request, impl.state_request.pools, starts,
                   devices, job, *policy, impl.state_result, counters,
                   impl.state_result.verdicts.back());
    Impl::compute_stats(impl.state_request, impl.state_result);
    counters.pools_repacked =
        impl.state_result.verdicts.back().verdict == Verdict::kAdmit ? 1 : 0;
  } else {
    impl.state_result = impl.run_pack(
        impl.state_request, impl.state_request.pools, devices, *policy,
        counters);
    counters.pools_repacked = impl.state_request.pools.size();
  }
  FleetReport report = impl.make_report(
      impl.state_request, impl.state_request.pools, impl.state_result,
      counters);
  report.wall_seconds = seconds_since(start);
  return report;
}

FleetReport FleetPlanner::apply(const JobFinish& event) {
  const auto start = std::chrono::steady_clock::now();
  Impl& impl = *impl_;
  if (!impl.has_state) {
    throw std::logic_error("FleetPlanner::apply before pack()");
  }
  std::size_t index = impl.state_request.jobs.size();
  for (std::size_t i = 0; i < impl.state_request.jobs.size(); ++i) {
    if (impl.state_request.jobs[i].id == event.id) {
      index = i;
      break;
    }
  }
  if (index == impl.state_request.jobs.size()) {
    throw std::invalid_argument("fleet apply: unknown job id '" + event.id +
                                "'");
  }
  const bool was_admitted =
      impl.state_result.verdicts[index].verdict == Verdict::kAdmit;
  impl.state_request.jobs.erase(impl.state_request.jobs.begin() +
                                static_cast<std::ptrdiff_t>(index));
  impl.state_result.verdicts.erase(impl.state_result.verdicts.begin() +
                                   static_cast<std::ptrdiff_t>(index));

  FleetCounters counters;
  if (was_admitted) {
    // Freed capacity can cascade (a deferred job may now fit), so repack —
    // pure integer arithmetic, every estimate served from the cache.
    const std::unique_ptr<PackingPolicy> policy =
        make_packing_policy(impl.state_request.policy);
    const std::vector<gpu::DeviceModel> devices =
        Impl::distinct_devices({&impl.state_request.pools});
    counters.estimates_reused = impl.state_request.jobs.size();
    impl.state_result = impl.run_pack(
        impl.state_request, impl.state_request.pools, devices, *policy,
        counters);
    counters.pools_repacked = impl.state_request.pools.size();
  } else {
    // A deferred/rejected job never held capacity: placements stand.
    Impl::compute_stats(impl.state_request, impl.state_result);
  }
  FleetReport report = impl.make_report(
      impl.state_request, impl.state_request.pools, impl.state_result,
      counters);
  report.wall_seconds = seconds_since(start);
  return report;
}

WhatIfDelta FleetPlanner::what_if(const FleetRequest& request,
                                  const std::vector<GpuPool>& added_pools) {
  if (added_pools.empty()) {
    throw std::invalid_argument(
        "fleet what-if: added pools must be non-empty");
  }
  FleetRequest materialized = request;
  materialized.what_if = added_pools;
  impl_->materialize_ids(materialized);
  Impl::validate(materialized);
  const std::unique_ptr<PackingPolicy> policy =
      make_packing_policy(materialized.policy);
  FleetCounters counters;
  const std::vector<gpu::DeviceModel> devices =
      Impl::distinct_devices({&materialized.pools, &materialized.what_if});
  impl_->ensure_archetypes(materialized, devices, counters);
  const PackResult base = impl_->run_pack(materialized, materialized.pools,
                                          devices, *policy, counters);
  std::vector<GpuPool> augmented = materialized.pools;
  augmented.insert(augmented.end(), added_pools.begin(), added_pools.end());
  const PackResult after = impl_->run_pack(materialized, augmented, devices,
                                           *policy, counters);
  return Impl::make_delta(added_pools, base, after);
}

}  // namespace xmem::sched
