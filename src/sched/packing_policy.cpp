#include "sched/packing_policy.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <stdexcept>

namespace xmem::sched {

void PackingPolicy::reorder(std::vector<std::size_t>& order,
                            const std::vector<std::int64_t>&) const {
  (void)order;  // queue order stands
}

std::int64_t PackingPolicy::commit_bytes(std::int64_t demand_bytes,
                                         const SlotState&) const {
  return demand_bytes;
}

namespace {

/// Scan in slot order, take the first fit. Also the slot chooser the
/// whole-gpu baseline inherits (its commit override makes "fits" mean
/// "empty").
class FirstFitPolicy : public PackingPolicy {
 public:
  int choose(const std::vector<SlotState>& slots,
             const std::vector<std::int64_t>& demand_bytes) const override {
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (commit_bytes(demand_bytes[i], slots[i]) <= slots[i].free_bytes()) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }
};

/// One job per GPU, whatever the estimate says: commit the whole budget.
/// The conservative baseline the paper's §1 motivates replacing.
class WholeGpuPolicy : public FirstFitPolicy {
 public:
  std::int64_t commit_bytes(std::int64_t,
                            const SlotState& slot) const override {
    return slot.budget;
  }
};

/// Classic best-fit-decreasing: each priority class packs its largest
/// demands first, and every job lands on the feasible slot with the least
/// leftover space.
class BestFitDecreasingPolicy : public PackingPolicy {
 public:
  void reorder(std::vector<std::size_t>& order,
               const std::vector<std::int64_t>& predicted_bytes)
      const override {
    // `order` is already priority-major; a stable sort on bytes descending
    // keeps the priority classes intact and breaks byte ties by arrival.
    std::stable_sort(order.begin(), order.end(),
                     [&predicted_bytes](std::size_t a, std::size_t b) {
                       return predicted_bytes[a] > predicted_bytes[b];
                     });
  }

  bool order_preserving() const override { return false; }

  int choose(const std::vector<SlotState>& slots,
             const std::vector<std::int64_t>& demand_bytes) const override {
    int best = -1;
    std::int64_t best_leftover = 0;
    for (std::size_t i = 0; i < slots.size(); ++i) {
      const std::int64_t leftover = slots[i].free_bytes() - demand_bytes[i];
      if (leftover < 0) continue;
      if (best < 0 || leftover < best_leftover) {
        best = static_cast<int>(i);
        best_leftover = leftover;
      }
    }
    return best;
  }
};

struct Registration {
  std::string description;
  PackingPolicyFactory factory;
};

struct Registry {
  std::mutex mutex;
  std::map<std::string, Registration> entries;

  Registry() {
    entries["first-fit"] = {
        "predicted peak + headroom, first GPU that fits (queue order)",
        [] { return std::make_unique<FirstFitPolicy>(); }};
    entries["best-fit-decreasing"] = {
        "largest demands first, tightest feasible GPU (classic BFD)",
        [] { return std::make_unique<BestFitDecreasingPolicy>(); }};
    entries["whole-gpu"] = {
        "one job per GPU regardless of estimate (conservative baseline)",
        [] { return std::make_unique<WholeGpuPolicy>(); }};
  }
};

Registry& registry() {
  static Registry instance;
  return instance;
}

std::string known_names_message() {
  std::string names;
  for (const std::string& name : packing_policy_names()) {
    if (!names.empty()) names += ", ";
    names += name;
  }
  return names;
}

}  // namespace

void register_packing_policy(const std::string& name,
                             const std::string& description,
                             PackingPolicyFactory factory) {
  if (name.empty()) {
    throw std::invalid_argument("register_packing_policy: empty name");
  }
  if (!factory) {
    throw std::invalid_argument("register_packing_policy: null factory for '" +
                                name + "'");
  }
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  if (reg.entries.count(name) > 0) {
    throw std::invalid_argument("register_packing_policy: duplicate name '" +
                                name + "'");
  }
  reg.entries.emplace(name, Registration{description, std::move(factory)});
}

bool is_known_packing_policy(const std::string& name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  return reg.entries.count(name) > 0;
}

std::vector<std::string> packing_policy_names() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::vector<std::string> names;
  names.reserve(reg.entries.size());
  for (const auto& [name, entry] : reg.entries) names.push_back(name);
  return names;  // std::map iterates sorted
}

std::string packing_policy_description(const std::string& name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  const auto it = reg.entries.find(name);
  if (it == reg.entries.end()) return std::string();
  return it->second.description;
}

std::unique_ptr<PackingPolicy> make_packing_policy(const std::string& name) {
  Registry& reg = registry();
  PackingPolicyFactory factory;
  {
    std::lock_guard<std::mutex> lock(reg.mutex);
    const auto it = reg.entries.find(name);
    if (it != reg.entries.end()) factory = it->second.factory;
  }
  if (!factory) {
    throw std::invalid_argument("unknown packing policy '" + name +
                                "' (known: " + known_names_message() + ")");
  }
  return factory();
}

}  // namespace xmem::sched
