// Minimal, dependency-free JSON value / parser / writer.
//
// The profiler emits PyTorch-Profiler-style JSON traces and the Analyzer
// consumes them, so this module is on the critical path of the xMem
// pipeline (and is exercised heavily by tests). It supports the full JSON
// grammar except for exotic numbers (NaN/Inf are not valid JSON and are
// rejected on write); integers that fit in int64 are preserved exactly.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace xmem::util {

class Json;
using JsonArray = std::vector<Json>;
// std::map (ordered) keeps serialization deterministic across runs.
using JsonObject = std::map<std::string, Json>;

class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(const std::string& message, std::size_t offset)
      : std::runtime_error(message + " at offset " + std::to_string(offset)),
        offset_(offset) {}
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

class Json {
 public:
  enum class Type { Null, Bool, Int, Double, String, Array, Object };

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(int v) : value_(static_cast<std::int64_t>(v)) {}
  Json(unsigned v) : value_(static_cast<std::int64_t>(v)) {}
  Json(long v) : value_(static_cast<std::int64_t>(v)) {}
  Json(long long v) : value_(static_cast<std::int64_t>(v)) {}
  Json(double v) : value_(v) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(JsonArray a) : value_(std::move(a)) {}
  Json(JsonObject o) : value_(std::move(o)) {}

  static Json array() { return Json(JsonArray{}); }
  static Json object() { return Json(JsonObject{}); }

  Type type() const { return static_cast<Type>(value_.index()); }
  bool is_null() const { return type() == Type::Null; }
  bool is_bool() const { return type() == Type::Bool; }
  bool is_int() const { return type() == Type::Int; }
  bool is_double() const { return type() == Type::Double; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return type() == Type::String; }
  bool is_array() const { return type() == Type::Array; }
  bool is_object() const { return type() == Type::Object; }

  bool as_bool() const { return std::get<bool>(value_); }
  std::int64_t as_int() const {
    if (is_double()) return static_cast<std::int64_t>(std::get<double>(value_));
    return std::get<std::int64_t>(value_);
  }
  double as_double() const {
    if (is_int()) return static_cast<double>(std::get<std::int64_t>(value_));
    return std::get<double>(value_);
  }
  const std::string& as_string() const { return std::get<std::string>(value_); }

  JsonArray& as_array() { return std::get<JsonArray>(value_); }
  const JsonArray& as_array() const { return std::get<JsonArray>(value_); }
  JsonObject& as_object() { return std::get<JsonObject>(value_); }
  const JsonObject& as_object() const { return std::get<JsonObject>(value_); }

  /// Object access. `operator[]` creates members on mutable objects like a
  /// typical JSON API; `at` throws on absence; `get_or` never throws.
  Json& operator[](const std::string& key);
  const Json& at(const std::string& key) const;
  bool contains(const std::string& key) const;
  std::int64_t get_int_or(const std::string& key, std::int64_t fallback) const;
  double get_double_or(const std::string& key, double fallback) const;
  std::string get_string_or(const std::string& key,
                            const std::string& fallback) const;

  /// Array helpers.
  void push_back(Json v);
  std::size_t size() const;
  Json& operator[](std::size_t index) { return as_array()[index]; }
  const Json& operator[](std::size_t index) const { return as_array()[index]; }

  bool operator==(const Json& other) const { return value_ == other.value_; }

  /// Serialize. `indent < 0` => compact single-line output.
  std::string dump(int indent = -1) const;

  /// Parse a complete JSON document; throws JsonParseError on malformed
  /// input (including trailing garbage).
  static Json parse(std::string_view text);

 private:
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string,
               JsonArray, JsonObject>
      value_;
};

}  // namespace xmem::util
