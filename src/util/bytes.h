// Byte-size helpers shared across the code base.
//
// All memory quantities in xmem are `std::int64_t` byte counts. Signed
// arithmetic is deliberate: profiler memory events carry negative byte
// deltas for deallocations, and intermediate accounting (e.g. "free space
// remaining") must not silently wrap.
#pragma once

#include <cstdint>
#include <string>

namespace xmem::util {

inline constexpr std::int64_t kKiB = 1024;
inline constexpr std::int64_t kMiB = 1024 * kKiB;
inline constexpr std::int64_t kGiB = 1024 * kMiB;

/// Round `size` up to the next multiple of `alignment` (alignment > 0).
constexpr std::int64_t round_up(std::int64_t size, std::int64_t alignment) {
  return ((size + alignment - 1) / alignment) * alignment;
}

/// True when `size` is an exact multiple of `alignment`.
constexpr bool is_aligned(std::int64_t size, std::int64_t alignment) {
  return size % alignment == 0;
}

/// Human-readable rendering, e.g. "1.50 GiB", "512 B". Used by reports only;
/// never parse the output.
std::string format_bytes(std::int64_t bytes);

/// Parse shorthand like "12GiB", "8gb", "512", "2MiB". Returns -1 on error.
std::int64_t parse_bytes(const std::string& text);

}  // namespace xmem::util
