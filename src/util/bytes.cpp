#include "util/bytes.h"

#include <array>
#include <cctype>
#include <cmath>
#include <cstdio>

namespace xmem::util {

std::string format_bytes(std::int64_t bytes) {
  const bool negative = bytes < 0;
  const double magnitude = std::abs(static_cast<double>(bytes));
  static constexpr std::array<const char*, 4> kUnits = {"B", "KiB", "MiB",
                                                        "GiB"};
  double value = magnitude;
  std::size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < kUnits.size()) {
    value /= 1024.0;
    ++unit;
  }
  char buf[64];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%s%lld B", negative ? "-" : "",
                  static_cast<long long>(magnitude));
  } else {
    std::snprintf(buf, sizeof(buf), "%s%.2f %s", negative ? "-" : "", value,
                  kUnits[unit]);
  }
  return buf;
}

std::int64_t parse_bytes(const std::string& text) {
  if (text.empty()) return -1;
  std::size_t pos = 0;
  while (pos < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[pos])) ||
          text[pos] == '.')) {
    ++pos;
  }
  if (pos == 0) return -1;
  double value = 0.0;
  try {
    value = std::stod(text.substr(0, pos));
  } catch (...) {
    return -1;
  }
  std::string unit;
  for (std::size_t i = pos; i < text.size(); ++i) {
    const char c = text[i];
    if (c == ' ') continue;
    unit.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  double scale = 1.0;
  if (unit.empty() || unit == "b") {
    scale = 1.0;
  } else if (unit == "k" || unit == "kb" || unit == "kib") {
    scale = static_cast<double>(kKiB);
  } else if (unit == "m" || unit == "mb" || unit == "mib") {
    scale = static_cast<double>(kMiB);
  } else if (unit == "g" || unit == "gb" || unit == "gib") {
    scale = static_cast<double>(kGiB);
  } else {
    return -1;
  }
  return static_cast<std::int64_t>(value * scale);
}

}  // namespace xmem::util
