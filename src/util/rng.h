// Deterministic pseudo-random number generation.
//
// Every stochastic decision in the repository (run-to-run jitter, Monte
// Carlo sampling, SchedTune's training-set generation) flows through `Rng`,
// seeded explicitly from the experiment configuration, so that any run is
// reproducible from (config, seed) alone. The generator is xoshiro256++,
// seeded via splitmix64 — fast, well distributed, and dependency free.
#pragma once

#include <cstdint>
#include <limits>

namespace xmem::util {

/// splitmix64 step; used for seeding and for cheap stateless hashing of ids
/// into independent seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Combine a seed with a stream id so that sub-components derive independent
/// deterministic streams from one experiment seed.
constexpr std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t stream) {
  std::uint64_t s = seed ^ (0x9E3779B97F4A7C15ULL * (stream + 1));
  return splitmix64(s);
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853C49E6748FEA9BULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Uniform in [0, 2^64).
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound == 0 returns 0.
  std::uint64_t next_below(std::uint64_t bound) {
    if (bound == 0) return 0;
    // Lemire's nearly-divisionless method with rejection for exactness.
    const std::uint64_t threshold = (-bound) % bound;
    while (true) {
      const std::uint64_t r = next_u64();
      __extension__ typedef unsigned __int128 uint128;
      const uint128 m = static_cast<uint128>(r) * static_cast<uint128>(bound);
      if (static_cast<std::uint64_t>(m) >= threshold) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t next_in_range(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_double_in(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Multiplicative jitter: uniform in [1 - amplitude, 1 + amplitude].
  double jitter(double amplitude) {
    return 1.0 + amplitude * (2.0 * next_double() - 1.0);
  }

  /// Bernoulli draw.
  bool next_bool(double p_true) { return next_double() < p_true; }

  /// Standard normal via Box–Muller (single value, no caching — simplicity
  /// over speed; this is not on any hot path).
  double next_gaussian() {
    double u1 = next_double();
    if (u1 <= std::numeric_limits<double>::min()) u1 = 1e-300;
    const double u2 = next_double();
    constexpr double kTwoPi = 6.283185307179586476925286766559;
    // sqrt/log/cos via <cmath> through the inline include below.
    return box_muller(u1, u2, kTwoPi);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  static double box_muller(double u1, double u2, double two_pi);

  std::uint64_t state_[4] = {};
};

}  // namespace xmem::util
