#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace xmem::util {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double sum_sq = 0.0;
  for (double x : xs) sum_sq += (x - m) * (x - m);
  return sum_sq / static_cast<double>(xs.size() - 1);
}

double stddev(const std::vector<double>& xs) { return std::sqrt(variance(xs)); }

double quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

double median(std::vector<double> xs) { return quantile(std::move(xs), 0.5); }

BoxplotSummary boxplot_summary(std::vector<double> xs) {
  BoxplotSummary s;
  if (xs.empty()) return s;
  std::sort(xs.begin(), xs.end());
  s.n = xs.size();
  s.minimum = xs.front();
  s.maximum = xs.back();
  s.q1 = quantile(xs, 0.25);
  s.median = quantile(xs, 0.5);
  s.q3 = quantile(xs, 0.75);
  const double iqr = s.q3 - s.q1;
  const double lo_fence = s.q1 - 1.5 * iqr;
  const double hi_fence = s.q3 + 1.5 * iqr;
  s.whisker_low = s.maximum;
  s.whisker_high = s.minimum;
  for (double x : xs) {
    if (x >= lo_fence) {
      s.whisker_low = x;
      break;
    }
  }
  for (auto it = xs.rbegin(); it != xs.rend(); ++it) {
    if (*it <= hi_fence) {
      s.whisker_high = *it;
      break;
    }
  }
  for (double x : xs) {
    if (x < lo_fence || x > hi_fence) ++s.outliers;
  }
  return s;
}

namespace {

// Continued fraction for the incomplete beta function (Numerical Recipes
// style modified Lentz algorithm).
double beta_continued_fraction(double a, double b, double x) {
  constexpr int kMaxIterations = 300;
  constexpr double kEpsilon = 3.0e-14;
  constexpr double kTiny = 1.0e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double result = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const double dm = static_cast<double>(m);
    double aa = dm * (b - dm) * x / ((qam + 2.0 * dm) * (a + 2.0 * dm));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    result *= d * c;
    aa = -(a + dm) * (qab + dm) * x / ((a + 2.0 * dm) * (qap + 2.0 * dm));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    result *= delta;
    if (std::fabs(delta - 1.0) < kEpsilon) break;
  }
  return result;
}

}  // namespace

double regularized_incomplete_beta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double log_beta = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b) +
                          a * std::log(x) + b * std::log1p(-x);
  const double front = std::exp(log_beta);
  // Use the symmetry relation to stay in the rapidly converging region.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_continued_fraction(a, b, x) / a;
  }
  return 1.0 - front * beta_continued_fraction(b, a, 1.0 - x) / b;
}

double f_distribution_sf(double f, double d1, double d2) {
  if (f <= 0.0) return 1.0;
  if (d1 <= 0.0 || d2 <= 0.0) return 1.0;
  const double x = d2 / (d2 + d1 * f);
  return regularized_incomplete_beta(d2 / 2.0, d1 / 2.0, x);
}

AnovaResult one_way_anova(const std::vector<std::vector<double>>& groups) {
  AnovaResult r;
  std::size_t total_n = 0;
  double grand_sum = 0.0;
  std::size_t k = 0;
  for (const auto& g : groups) {
    if (g.empty()) continue;
    ++k;
    total_n += g.size();
    for (double x : g) grand_sum += x;
  }
  if (k < 2 || total_n <= k) return r;
  const double grand_mean = grand_sum / static_cast<double>(total_n);

  double ss_between = 0.0;
  double ss_within = 0.0;
  for (const auto& g : groups) {
    if (g.empty()) continue;
    const double gm = mean(g);
    ss_between += static_cast<double>(g.size()) * (gm - grand_mean) * (gm - grand_mean);
    for (double x : g) ss_within += (x - gm) * (x - gm);
  }
  r.ss_between = ss_between;
  r.ss_within = ss_within;
  r.df_between = static_cast<double>(k - 1);
  r.df_within = static_cast<double>(total_n - k);
  if (ss_within <= std::numeric_limits<double>::min()) {
    r.f_statistic = ss_between > 0 ? std::numeric_limits<double>::infinity() : 0.0;
    r.p_value = ss_between > 0 ? 0.0 : 1.0;
    return r;
  }
  const double ms_between = ss_between / r.df_between;
  const double ms_within = ss_within / r.df_within;
  r.f_statistic = ms_between / ms_within;
  r.p_value = f_distribution_sf(r.f_statistic, r.df_between, r.df_within);
  return r;
}

double pearson_correlation(const std::vector<double>& xs,
                           const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace xmem::util
