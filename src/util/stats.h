// Descriptive and inferential statistics used by the evaluation harness.
//
// Implements exactly what the paper's evaluation needs: medians/quantiles
// and boxplot summaries for the Fig. 7 MRE distributions, and one-way ANOVA
// (F statistic + p value) for the "ANOVA runs" of Section 4.1.4. Nothing is
// approximated by sampling: quantiles use linear interpolation (type-7, the
// numpy default), and the ANOVA p value integrates the F distribution via
// the regularized incomplete beta function.
#pragma once

#include <cstddef>
#include <vector>

namespace xmem::util {

double mean(const std::vector<double>& xs);
/// Sample variance (divides by n-1). Returns 0 for n < 2.
double variance(const std::vector<double>& xs);
double stddev(const std::vector<double>& xs);

/// Type-7 (linear interpolation) quantile; q in [0,1]. Empty input -> 0.
double quantile(std::vector<double> xs, double q);
double median(std::vector<double> xs);

/// Five-number boxplot summary matching matplotlib's default whisker rule
/// (whiskers at the furthest data point within 1.5 * IQR of the box).
struct BoxplotSummary {
  double minimum = 0;
  double q1 = 0;
  double median = 0;
  double q3 = 0;
  double maximum = 0;
  double whisker_low = 0;
  double whisker_high = 0;
  std::size_t n = 0;
  std::size_t outliers = 0;  ///< points outside the whiskers
};
BoxplotSummary boxplot_summary(std::vector<double> xs);

/// One-way ANOVA across k groups.
struct AnovaResult {
  double f_statistic = 0;
  double p_value = 1.0;
  double df_between = 0;
  double df_within = 0;
  double ss_between = 0;
  double ss_within = 0;
};
AnovaResult one_way_anova(const std::vector<std::vector<double>>& groups);

/// Regularized incomplete beta function I_x(a, b); continued-fraction
/// evaluation (Lentz). Exposed for testing.
double regularized_incomplete_beta(double a, double b, double x);

/// Survival function of the F distribution: P[F(d1, d2) > f].
double f_distribution_sf(double f, double d1, double d2);

/// Pearson correlation of two equal-length vectors; 0 when undefined.
double pearson_correlation(const std::vector<double>& xs,
                           const std::vector<double>& ys);

}  // namespace xmem::util
