#include "util/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace xmem::util {

Json& Json::operator[](const std::string& key) {
  if (is_null()) value_ = JsonObject{};
  return as_object()[key];
}

const Json& Json::at(const std::string& key) const {
  const auto& obj = as_object();
  auto it = obj.find(key);
  if (it == obj.end()) {
    throw std::out_of_range("Json::at: missing key '" + key + "'");
  }
  return it->second;
}

bool Json::contains(const std::string& key) const {
  if (!is_object()) return false;
  return as_object().count(key) > 0;
}

std::int64_t Json::get_int_or(const std::string& key,
                              std::int64_t fallback) const {
  if (!is_object()) return fallback;
  auto it = as_object().find(key);
  if (it == as_object().end() || !it->second.is_number()) return fallback;
  return it->second.as_int();
}

double Json::get_double_or(const std::string& key, double fallback) const {
  if (!is_object()) return fallback;
  auto it = as_object().find(key);
  if (it == as_object().end() || !it->second.is_number()) return fallback;
  return it->second.as_double();
}

std::string Json::get_string_or(const std::string& key,
                                const std::string& fallback) const {
  if (!is_object()) return fallback;
  auto it = as_object().find(key);
  if (it == as_object().end() || !it->second.is_string()) return fallback;
  return it->second.as_string();
}

void Json::push_back(Json v) {
  if (is_null()) value_ = JsonArray{};
  as_array().push_back(std::move(v));
}

std::size_t Json::size() const {
  if (is_array()) return as_array().size();
  if (is_object()) return as_object().size();
  return 0;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
}

void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    throw std::invalid_argument("Json: NaN/Inf are not representable in JSON");
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
  // Ensure the value re-parses as a double, not an int.
  if (out.find_first_of(".eE", out.size() - std::strlen(buf)) == std::string::npos) {
    out += ".0";
  }
}

void dump_impl(const Json& v, std::string& out, int indent, int depth) {
  const bool pretty = indent >= 0;
  const std::string pad = pretty ? std::string(static_cast<std::size_t>(indent) *
                                                   static_cast<std::size_t>(depth + 1),
                                               ' ')
                                 : "";
  const std::string close_pad =
      pretty ? std::string(static_cast<std::size_t>(indent) *
                               static_cast<std::size_t>(depth),
                           ' ')
             : "";
  switch (v.type()) {
    case Json::Type::Null: out += "null"; break;
    case Json::Type::Bool: out += v.as_bool() ? "true" : "false"; break;
    case Json::Type::Int: out += std::to_string(v.as_int()); break;
    case Json::Type::Double: append_double(out, v.as_double()); break;
    case Json::Type::String: append_escaped(out, v.as_string()); break;
    case Json::Type::Array: {
      const auto& arr = v.as_array();
      if (arr.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      bool first = true;
      for (const auto& item : arr) {
        if (!first) out.push_back(',');
        first = false;
        if (pretty) {
          out.push_back('\n');
          out += pad;
        }
        dump_impl(item, out, indent, depth + 1);
      }
      if (pretty) {
        out.push_back('\n');
        out += close_pad;
      }
      out.push_back(']');
      break;
    }
    case Json::Type::Object: {
      const auto& obj = v.as_object();
      if (obj.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : obj) {
        if (!first) out.push_back(',');
        first = false;
        if (pretty) {
          out.push_back('\n');
          out += pad;
        }
        append_escaped(out, key);
        out.push_back(':');
        if (pretty) out.push_back(' ');
        dump_impl(value, out, indent, depth + 1);
      }
      if (pretty) {
        out.push_back('\n');
        out += close_pad;
      }
      out.push_back('}');
      break;
    }
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) {
      throw JsonParseError("trailing characters after JSON document", pos_);
    }
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw JsonParseError(message, pos_);
  }

  char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char advance() {
    const char c = peek();
    ++pos_;
    return c;
  }

  bool consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char expected, const char* what) {
    if (!consume(expected)) fail(std::string("expected ") + what);
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  Json parse_value() {
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't': return parse_literal("true", Json(true));
      case 'f': return parse_literal("false", Json(false));
      case 'n': return parse_literal("null", Json(nullptr));
      default: return parse_number();
    }
  }

  Json parse_literal(std::string_view literal, Json value) {
    if (text_.substr(pos_, literal.size()) != literal) {
      fail("invalid literal");
    }
    pos_ += literal.size();
    return value;
  }

  Json parse_object() {
    expect('{', "'{'");
    JsonObject obj;
    skip_whitespace();
    if (consume('}')) return Json(std::move(obj));
    while (true) {
      skip_whitespace();
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      skip_whitespace();
      expect(':', "':'");
      obj[std::move(key)] = parse_value();
      skip_whitespace();
      if (consume(',')) continue;
      expect('}', "'}' or ','");
      break;
    }
    return Json(std::move(obj));
  }

  Json parse_array() {
    expect('[', "'['");
    JsonArray arr;
    skip_whitespace();
    if (consume(']')) return Json(std::move(arr));
    while (true) {
      arr.push_back(parse_value());
      skip_whitespace();
      if (consume(',')) continue;
      expect(']', "']' or ','");
      break;
    }
    return Json(std::move(arr));
  }

  std::string parse_string() {
    expect('"', "'\"'");
    std::string out;
    while (true) {
      const char c = advance();
      if (c == '"') break;
      if (c == '\\') {
        const char esc = advance();
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            unsigned code = parse_hex4();
            if (code >= 0xD800 && code <= 0xDBFF) {
              // Surrogate pair.
              if (!consume('\\') || !consume('u')) {
                fail("unpaired UTF-16 surrogate");
              }
              const unsigned low = parse_hex4();
              if (low < 0xDC00 || low > 0xDFFF) {
                fail("invalid low surrogate");
              }
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            }
            append_utf8(out, code);
            break;
          }
          default: fail("invalid escape sequence");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = advance();
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape");
      }
    }
    return value;
  }

  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {
      // sign consumed
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    bool is_floating = false;
    if (consume('.')) {
      is_floating = true;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_floating = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      fail("invalid number");
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (!is_floating) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        return Json(static_cast<std::int64_t>(v));
      }
      // Falls through to double for out-of-range integers.
    }
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("invalid number");
    return Json(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string Json::dump(int indent) const {
  std::string out;
  dump_impl(*this, out, indent, 0);
  return out;
}

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace xmem::util
