#include "util/thread_pool.h"

#include <algorithm>

namespace xmem::util {

ThreadPool::ThreadPool(std::size_t threads) {
  threads = std::max<std::size_t>(1, threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

std::size_t ThreadPool::default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(hw == 0 ? 4 : hw, 1, 8);
}

}  // namespace xmem::util
