// Simulated time.
//
// The whole system runs on virtual time measured in microseconds. The
// executor advances the clock by each operator's duration; profiler events
// and NVML-style samples are stamped from it. Using virtual time keeps every
// experiment deterministic and lets a "3-iteration profiling run" complete
// in microseconds of wall time.
#pragma once

#include <cstdint>

namespace xmem::util {

using TimeUs = std::int64_t;  ///< microseconds of simulated time

class SimClock {
 public:
  SimClock() = default;
  explicit SimClock(TimeUs start) : now_(start) {}

  TimeUs now() const { return now_; }

  /// Advance by `delta` microseconds (delta >= 0) and return the new time.
  TimeUs advance(TimeUs delta) {
    now_ += delta;
    return now_;
  }

  void reset(TimeUs to = 0) { now_ = to; }

 private:
  TimeUs now_ = 0;
};

}  // namespace xmem::util
