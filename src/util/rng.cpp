#include "util/rng.h"

#include <cmath>

namespace xmem::util {

double Rng::box_muller(double u1, double u2, double two_pi) {
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(two_pi * u2);
}

}  // namespace xmem::util
