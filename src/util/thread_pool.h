// Small fixed-size thread pool for fan-out work inside the estimation
// service (concurrent what-if sweeps: one task per (device, allocator)
// replay). Deliberately minimal: submit() returns a std::future, the
// destructor drains the queue and joins. Tasks must not submit follow-up
// work to the same pool from inside a task and then block on it (no work
// stealing), which the service's flat fan-out never needs.
#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace xmem::util {

class ThreadPool {
 public:
  /// `threads` is clamped to at least 1.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a callable; the returned future yields its result (or
  /// rethrows its exception).
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using Result = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<Result()>>(
        std::forward<Fn>(fn));
    std::future<Result> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace([task] { (*task)(); });
    }
    wake_.notify_one();
    return future;
  }

  /// Sensible default width for CPU-bound replay fan-out.
  static std::size_t default_threads();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
};

}  // namespace xmem::util
