// Shared helpers for the paper-reproduction benches: curve downsampling,
// ASCII sparklines for memory-over-time figures, and common CLI parsing.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "util/sim_clock.h"
#include "util/stats.h"

namespace xmem::benchutil {

using Series = std::vector<std::pair<util::TimeUs, std::int64_t>>;

/// Downsample a (time, bytes) series to `buckets` max-of-bucket values over
/// its full time range (max preserves peaks, which is what memory plots
/// care about).
inline std::vector<std::int64_t> downsample_max(const Series& series,
                                                std::size_t buckets) {
  std::vector<std::int64_t> out(buckets, 0);
  if (series.empty() || buckets == 0) return out;
  const util::TimeUs t0 = series.front().first;
  const util::TimeUs t1 = std::max(series.back().first, t0 + 1);
  std::int64_t last = 0;
  std::size_t cursor = 0;
  for (std::size_t b = 0; b < buckets; ++b) {
    const util::TimeUs bucket_end =
        t0 + (t1 - t0) * static_cast<std::int64_t>(b + 1) /
                 static_cast<std::int64_t>(buckets);
    std::int64_t bucket_max = last;
    while (cursor < series.size() && series[cursor].first <= bucket_end) {
      bucket_max = std::max(bucket_max, series[cursor].second);
      last = series[cursor].second;
      ++cursor;
    }
    out[b] = bucket_max;
  }
  return out;
}

/// Render a downsampled curve as an ASCII sparkline (8 levels).
inline std::string sparkline(const std::vector<std::int64_t>& values) {
  static const char* kLevels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  std::int64_t max_value = 1;
  for (std::int64_t v : values) max_value = std::max(max_value, v);
  std::string out;
  for (std::int64_t v : values) {
    const auto level = static_cast<std::size_t>((v * 7) / max_value);
    out += kLevels[level];
  }
  return out;
}

/// Pearson correlation between two equal-bucket downsampled curves.
inline double curve_correlation(const Series& a, const Series& b,
                                std::size_t buckets = 64) {
  const auto da = downsample_max(a, buckets);
  const auto db = downsample_max(b, buckets);
  std::vector<double> xa(da.begin(), da.end());
  std::vector<double> xb(db.begin(), db.end());
  return util::pearson_correlation(xa, xb);
}

inline bool has_flag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == flag) return true;
  }
  return false;
}

}  // namespace xmem::benchutil
