// Figure 7 reproduction (RQ1, accuracy): MRE distributions of peak-memory
// estimation across estimators.
//   7a: CNN models, ANOVA grid, RTX 3060
//   7b: Transformer models, ANOVA grid, RTX 3060
//   7c: CNN models, Monte Carlo, {RTX 3060, RTX 4060}
//   7d: Transformer models, Monte Carlo, {RTX 3060, RTX 4060}
// Also prints the one-way ANOVA across estimators and the headline
// aggregates behind the abstract's "decreases median relative error by 91%".
//
// Flags: --fast (thinned grids), --ablation (adds xMem with the
// Orchestrator disabled as "xMem-noOrch").
#include <cstdio>

#include "eval_scope.h"
#include "eval/report.h"

int main(int argc, char** argv) {
  using namespace xmem;
  const auto scope = benchutil::EvalScope::from_args(argc, argv);
  auto harness = benchutil::make_harness(scope);

  std::printf("Figure 7: MRE distributions (lower = more accurate)%s\n\n",
              scope.fast ? " [--fast scope]" : "");

  // ---- ANOVA runs on the RTX 3060 (7a / 7b) ----
  std::vector<eval::RunRecord> anova_records;
  const auto cnn_grid =
      benchutil::thinned_grid(models::cnn_model_names(), scope.batch_stride);
  const auto tf_grid = benchutil::thinned_grid(
      models::transformer_model_names(), scope.batch_stride);
  std::size_t runs = 0;
  runs += harness.run_anova(cnn_grid, gpu::rtx3060(), anova_records);
  runs += harness.run_anova(tf_grid, gpu::rtx3060(), anova_records);
  std::printf("ANOVA runs performed: %zu (paper: 3903)\n\n", runs);

  std::printf("%s\n", eval::render_mre_boxplots(
                          anova_records, harness.estimator_names(), "CNN",
                          "Fig. 7a  CNN models (ANOVA, RTX 3060), relative "
                          "error %")
                          .c_str());
  std::printf("%s\n", eval::render_mre_boxplots(
                          anova_records, harness.estimator_names(),
                          "Transformer",
                          "Fig. 7b  Transformer models (ANOVA, RTX 3060), "
                          "relative error %")
                          .c_str());
  std::printf("%s\n",
              eval::render_anova(anova_records, harness.estimator_names())
                  .c_str());

  // ---- Monte Carlo runs across both local GPUs (7c / 7d) ----
  std::vector<eval::RunRecord> mc_records;
  std::vector<std::string> all_models = models::cnn_model_names();
  for (const auto& name : models::transformer_model_names()) {
    all_models.push_back(name);
  }
  const std::size_t mc_runs = harness.run_monte_carlo(
      all_models, {gpu::rtx3060(), gpu::rtx4060()}, scope.mc_runs, mc_records);
  std::printf("Monte Carlo runs performed: %zu (paper: 1306)\n\n", mc_runs);

  std::printf("%s\n", eval::render_mre_boxplots(
                          mc_records, harness.estimator_names(), "CNN",
                          "Fig. 7c  CNN models (Monte Carlo, both GPUs), "
                          "relative error %")
                          .c_str());
  std::printf("%s\n", eval::render_mre_boxplots(
                          mc_records, harness.estimator_names(), "Transformer",
                          "Fig. 7d  Transformer models (Monte Carlo, both "
                          "GPUs), relative error %")
                          .c_str());

  // ---- headline aggregates (abstract claims) ----
  std::vector<eval::RunRecord> all_records = anova_records;
  all_records.insert(all_records.end(), mc_records.begin(), mc_records.end());
  std::printf("%s\n",
              eval::render_headline(all_records, harness.estimator_names())
                  .c_str());
  std::printf("Paper shape: xMem median ~3-4%% with tight IQR; DNNMem "
              "10-30%%; SchedTune worst variance; LLMem largest outliers.\n");
  return 0;
}
