// Figure 9 reproduction (RQ5, scalability): MRE for the three large
// Transformers on the A100 40 GB — xMem vs DNNMem only (the paper excludes
// SchedTune and LLMem on this platform due to package conflicts). Batch
// size 1; optimizers restricted to {SGD, Adafactor} so every run fits (the
// paper requires valid MREs); five repeats each.
#include <cstdio>

#include "eval_scope.h"
#include "eval/report.h"

int main(int argc, char** argv) {
  using namespace xmem;
  const auto scope = benchutil::EvalScope::from_args(argc, argv);
  eval::HarnessOptions options;
  options.repeats = scope.fast ? 2 : 5;
  options.use_schedtune = false;  // package conflicts on CoLab (paper §4.6)
  options.use_llmem = false;
  eval::EvalHarness harness(options);

  const auto grid = benchutil::thinned_grid(models::rq5_model_names(), 1);
  std::vector<eval::RunRecord> records;
  const std::size_t runs =
      harness.run_anova(grid, gpu::a100_40gb(), records);

  std::printf("Figure 9: large models on NVIDIA A100 40GB (%zu runs)\n\n",
              runs);
  std::printf("%s\n", eval::render_mre_boxplots(records,
                                                harness.estimator_names(), "",
                                                "RQ5 MRE, relative error %")
                          .c_str());
  for (const auto& model : models::rq5_model_names()) {
    const double xmem = eval::mre_for(records, model, "xMem") * 100;
    const double dnnmem = eval::mre_for(records, model, "DNNMem") * 100;
    std::printf("%-32s xMem %.1f%%  DNNMem %.1f%%  (advantage %.1fx)\n",
                model.c_str(), xmem, dnnmem,
                xmem > 0 ? dnnmem / xmem : 0.0);
  }
  std::printf("\nPaper values: Llama-3.2-3B xMem 9.0%% / DNNMem 52.3%%; "
              "DeepSeek-R1-1.5B 1.0%% / 37%%; Qwen3-4B 4.3%% / 44.6%%.\n");
  std::printf("Expected shape: xMem single digits, DNNMem tens of percent "
              "(Adafactor state + runtime behaviour invisible to static "
              "analysis).\n");
  return 0;
}
