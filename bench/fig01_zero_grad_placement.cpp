// Figure 1 reproduction: the impact of optimizer.zero_grad() placement on
// GPU memory. POS0 calls zero_grad() immediately before loss.backward();
// POS1 calls it at the start of the iteration. Tensor-level activity is
// similar, but the segment footprint differs — the runtime/allocator
// sensitivity that motivates dynamic analysis.
//
// The paper plots distilGPT2, GPT-Neo and ConvNeXt; we run the same three
// workloads on the simulated RTX 3060 and print peak tensor vs segment
// memory per placement plus segment-curve sparklines.
#include <cstdio>

#include "bench_util.h"
#include "gpu/ground_truth.h"
#include "models/zoo.h"
#include "util/bytes.h"

int main() {
  using namespace xmem;
  struct Workload {
    const char* model;
    int batch;
    fw::OptimizerKind optimizer;
  };
  const Workload workloads[] = {
      {"distilgpt2", 8, fw::OptimizerKind::kAdamW},
      {"gpt-neo-125M", 8, fw::OptimizerKind::kAdamW},
      {"ConvNeXtBase", 400, fw::OptimizerKind::kAdamW},
  };
  const gpu::DeviceModel device = gpu::rtx3060();
  std::printf("Figure 1: optimizer.zero_grad() placement (device: %s)\n",
              device.name.c_str());
  std::printf("POS0 = zero_grad before backward; POS1 = at iteration start\n\n");

  for (const Workload& w : workloads) {
    const fw::ModelDescriptor model = models::build_model(w.model, w.batch);
    gpu::GroundTruthRunner runner;
    gpu::GroundTruthResult results[2];
    const fw::ZeroGradPlacement placements[2] = {
        fw::ZeroGradPlacement::kPos0BeforeBackward,
        fw::ZeroGradPlacement::kPos1IterStart};
    for (int p = 0; p < 2; ++p) {
      gpu::GroundTruthOptions options;
      options.placement = placements[p];
      options.record_series = true;
      options.seed = 21;
      results[p] = runner.run(model, w.optimizer, device, options);
    }
    std::printf("%s (batch %d, %s):\n", w.model, w.batch,
                to_string(w.optimizer));
    for (int p = 0; p < 2; ++p) {
      const char* label = p == 0 ? "POS0" : "POS1";
      if (results[p].oom) {
        std::printf("  %s: OOM\n", label);
        continue;
      }
      std::printf("  %s: peak Tensor %-11s peak Segment %-11s\n", label,
                  util::format_bytes(results[p].peak_allocated_exact).c_str(),
                  util::format_bytes(results[p].peak_reserved_exact).c_str());
      std::printf("    segment curve |%s|\n",
                  benchutil::sparkline(
                      benchutil::downsample_max(results[p].reserved_series, 72))
                      .c_str());
    }
    if (!results[0].oom && !results[1].oom) {
      const double tensor_ratio =
          static_cast<double>(results[0].peak_allocated_exact) /
          static_cast<double>(results[1].peak_allocated_exact);
      const double segment_delta_mb =
          static_cast<double>(results[0].peak_reserved_exact -
                              results[1].peak_reserved_exact) /
          1048576.0;
      std::printf("  -> tensor peaks nearly equal (ratio %.3f); "
                  "POS0 segments exceed POS1 by %.0f MiB\n\n",
                  tensor_ratio, segment_delta_mb);
    }
  }
  std::printf("Paper shape: tensor activity similar across placements, "
              "segment footprint differs significantly. Reproduced above.\n");
  return 0;
}
