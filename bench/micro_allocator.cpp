// google-benchmark microbenchmarks for the allocator tower — the hot path
// of both the ground-truth executor and xMem's replay (§6.1 discusses the
// simulation phase's cost).
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "alloc/backend_registry.h"
#include "alloc/caching_allocator.h"
#include "alloc/cuda_driver_sim.h"
#include "baselines/basic_bfc.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace {

using xmem::alloc::CachingAllocatorSim;
using xmem::alloc::SimulatedCudaDriver;
using xmem::util::kGiB;
using xmem::util::kMiB;

void BM_RoundSize(benchmark::State& state) {
  std::int64_t size = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(CachingAllocatorSim::round_size(size));
    size = (size * 7 + 13) % (64 * kMiB) + 1;
  }
}
BENCHMARK(BM_RoundSize);

/// Steady-state alloc/free pairs of a fixed size (pure cache-hit path).
void BM_AllocFreeCacheHit(benchmark::State& state) {
  const std::int64_t size = state.range(0);
  SimulatedCudaDriver driver(8 * kGiB);
  CachingAllocatorSim allocator(driver);
  allocator.free(allocator.allocate(size).id);  // warm the segment
  for (auto _ : state) {
    const auto outcome = allocator.allocate(size);
    allocator.free(outcome.id);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AllocFreeCacheHit)->Arg(512)->Arg(64 * 1024)->Arg(4 * kMiB)
    ->Arg(64 * kMiB);

/// Random training-like churn: mixed sizes, ~55% allocs, with splitting and
/// coalescing exercised continuously.
void BM_AllocFreeChurn(benchmark::State& state) {
  SimulatedCudaDriver driver(8 * kGiB);
  CachingAllocatorSim allocator(driver);
  xmem::util::Rng rng(42);
  std::vector<xmem::alloc::BlockId> live;
  for (auto _ : state) {
    if (live.empty() || rng.next_bool(0.55)) {
      const auto outcome = allocator.allocate(
          1 + static_cast<std::int64_t>(rng.next_below(8 * kMiB)));
      if (!outcome.oom) live.push_back(outcome.id);
    } else {
      const std::size_t pick = rng.next_below(live.size());
      allocator.free(live[pick]);
      live[pick] = live.back();
      live.pop_back();
    }
  }
  for (auto id : live) allocator.free(id);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AllocFreeChurn);

/// DNNMem's single-level BFC on the same churn for comparison.
void BM_BasicBfcChurn(benchmark::State& state) {
  xmem::baselines::BasicBfcAllocator bfc;
  xmem::util::Rng rng(42);
  std::vector<std::int64_t> live;
  for (auto _ : state) {
    if (live.empty() || rng.next_bool(0.55)) {
      live.push_back(
          bfc.alloc(1 + static_cast<std::int64_t>(rng.next_below(8 * kMiB))));
    } else {
      const std::size_t pick = rng.next_below(live.size());
      bfc.free(live[pick]);
      live[pick] = live.back();
      live.pop_back();
    }
  }
  for (auto id : live) bfc.free(id);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BasicBfcChurn);

/// The same churn against every registered backend through the generic
/// fw::AllocatorBackend interface — the apples-to-apples policy comparison,
/// plus a measure of the virtual-dispatch overhead vs. BM_AllocFreeChurn.
/// Registered dynamically in main() so new registry entries are benchmarked
/// without touching this file.
void BM_RegistryChurn(benchmark::State& state, const std::string& name) {
  SimulatedCudaDriver driver(8 * kGiB);
  const auto backend = xmem::alloc::make_backend(name, driver);
  xmem::util::Rng rng(42);
  std::vector<std::int64_t> live;
  for (auto _ : state) {
    if (live.empty() || rng.next_bool(0.55)) {
      const auto outcome = backend->backend_alloc(
          1 + static_cast<std::int64_t>(rng.next_below(8 * kMiB)));
      if (!outcome.oom) live.push_back(outcome.id);
    } else {
      const std::size_t pick = rng.next_below(live.size());
      backend->backend_free(live[pick]);
      live[pick] = live.back();
      live.pop_back();
    }
  }
  for (auto id : live) backend->backend_free(id);
  state.SetItemsProcessed(state.iterations());
}

void BM_SnapshotDump(benchmark::State& state) {
  SimulatedCudaDriver driver(8 * kGiB);
  CachingAllocatorSim allocator(driver);
  xmem::util::Rng rng(7);
  std::vector<xmem::alloc::BlockId> live;
  for (int i = 0; i < 2000; ++i) {
    if (live.empty() || rng.next_bool(0.6)) {
      const auto outcome = allocator.allocate(
          1 + static_cast<std::int64_t>(rng.next_below(4 * kMiB)));
      if (!outcome.oom) live.push_back(outcome.id);
    } else {
      const std::size_t pick = rng.next_below(live.size());
      allocator.free(live[pick]);
      live[pick] = live.back();
      live.pop_back();
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(allocator.snapshot());
  }
}
BENCHMARK(BM_SnapshotDump);

}  // namespace

int main(int argc, char** argv) {
  for (const std::string& name : xmem::alloc::backend_names()) {
    benchmark::RegisterBenchmark(("BM_RegistryChurn/" + name).c_str(),
                                 BM_RegistryChurn, name);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
