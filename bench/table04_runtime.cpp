// Table 4 reproduction (RQ4, overhead): average wall-clock time each
// estimator needs to produce one estimate, over a Monte Carlo sample.
//
// Absolute times differ from the paper by construction (its analysis runs
// over multi-million-row profiler files from real CPU executions; our
// substrate executes simulated iterations in milliseconds). The *ordering
// pattern* the paper discusses is what to compare: pre-trained inference
// (SchedTune) is orders of magnitude cheaper than the data-analytical
// estimators, and xMem's cost is dominated by trace processing.
#include <cstdio>

#include "eval_scope.h"
#include "eval/report.h"

int main(int argc, char** argv) {
  using namespace xmem;
  auto scope = benchutil::EvalScope::from_args(argc, argv);
  if (!scope.fast) scope.mc_runs = 150;  // runtime means converge quickly
  auto harness = benchutil::make_harness(scope);

  std::vector<std::string> all_models = models::cnn_model_names();
  for (const auto& name : models::transformer_model_names()) {
    all_models.push_back(name);
  }
  std::vector<eval::RunRecord> records;
  const std::size_t runs = harness.run_monte_carlo(
      all_models, {gpu::rtx3060(), gpu::rtx4060()}, scope.mc_runs, records);

  std::printf("Table 4: average estimator runtime over %zu Monte Carlo "
              "configurations\n\n",
              runs);
  std::printf("%s\n",
              eval::render_runtime_table(records, harness.estimator_names())
                  .c_str());
  std::printf("Paper values (s): DNNMem 33, SchedTune 2, LLMem 17, xMem 26 — "
              "on real profiler files with millions of rows.\n");
  std::printf("Reproduction shape: SchedTune's pre-trained inference is "
              "orders of magnitude cheaper than the analytical estimators; "
              "xMem pays for profiler-trace processing (here the traces are "
              "simulated, so absolute values are milliseconds).\n");
  return 0;
}
