// Figure 3 reproduction: merely altering the deallocation timing of one
// memory block relative to subsequent allocations dramatically changes the
// peak segment memory, even for identical tensors. The paper's example
// moves from 196 MB (sequence 1, late free) to 118 MB (sequence 2, early
// free).
#include <algorithm>
#include <cstdio>
#include <tuple>
#include <vector>

#include "core/simulator.h"
#include "util/bytes.h"

namespace {

using xmem::core::MemoryBlock;
using xmem::core::MemorySimulator;
using xmem::core::OrchestratedEvent;
using xmem::core::OrchestratedSequence;

OrchestratedSequence make_sequence(
    const std::vector<std::tuple<std::int64_t, std::int64_t, std::int64_t>>&
        blocks) {
  OrchestratedSequence seq;
  std::int64_t id = 1;
  for (const auto& [size, alloc_ts, free_ts] : blocks) {
    MemoryBlock b;
    b.id = id++;
    b.size = size;
    b.alloc_ts = alloc_ts;
    b.free_ts = free_ts;
    seq.blocks.push_back(b);
    seq.events.push_back(OrchestratedEvent{b.alloc_ts, b.id, b.size, true});
    if (free_ts >= 0) {
      seq.events.push_back(OrchestratedEvent{b.free_ts, b.id, b.size, false});
    }
  }
  std::sort(seq.events.begin(), seq.events.end(),
            [](const OrchestratedEvent& a, const OrchestratedEvent& b) {
              if (a.ts != b.ts) return a.ts < b.ts;
              return !a.is_alloc && b.is_alloc;
            });
  return seq;
}

}  // namespace

int main() {
  using xmem::util::kMiB;
  constexpr std::int64_t kBlockA = 60 * kMiB;
  constexpr std::int64_t kBlockB = 58 * kMiB;
  constexpr std::int64_t kBlockC = 58 * kMiB;
  constexpr std::int64_t kBlockD = 10 * kMiB;  // small trailing tensor

  // Sequence 1: A is freed only after B, C and D have been allocated.
  const OrchestratedSequence late = make_sequence({
      {kBlockA, 0, 60},
      {kBlockB, 10, 100},
      {kBlockC, 20, 100},
      {kBlockD, 30, 100},
  });
  // Sequence 2: A is freed before B arrives — B (and D) reuse A's segment.
  const OrchestratedSequence early = make_sequence({
      {kBlockA, 0, 5},
      {kBlockB, 10, 100},
      {kBlockC, 20, 100},
      {kBlockD, 30, 100},
  });

  MemorySimulator simulator;
  const auto late_result = simulator.replay(late);
  const auto early_result = simulator.replay(early);

  std::printf("Figure 3: deallocation timing vs peak segment memory\n");
  std::printf("identical tensors: A=60 MiB, B=58 MiB, C=58 MiB, D=10 MiB\n\n");
  std::printf("Sequence 1 (A freed after B/C/D alloc): peak segments = %s\n",
              xmem::util::format_bytes(late_result.peak_reserved).c_str());
  std::printf("Sequence 2 (A freed before B alloc)   : peak segments = %s\n",
              xmem::util::format_bytes(early_result.peak_reserved).c_str());
  std::printf("\nPaper reports 196 MB -> 118 MB for its block set; the "
              "reproduction shows the same effect (%.0f MiB -> %.0f MiB, "
              "%.0f%% reduction) from re-timing one deallocation.\n",
              static_cast<double>(late_result.peak_reserved) / kMiB,
              static_cast<double>(early_result.peak_reserved) / kMiB,
              100.0 * (1.0 - static_cast<double>(early_result.peak_reserved) /
                                 static_cast<double>(late_result.peak_reserved)));
  return 0;
}
