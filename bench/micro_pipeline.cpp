// google-benchmark microbenchmarks for the xMem pipeline stages (§6.1:
// "the current runtime is dominated by trace processing"): profiling,
// JSON serialization/parsing, analysis, orchestration, simulation, and the
// end-to-end estimate, on a representative mid-size workload.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/analyzer.h"
#include "core/estimation_service.h"
#include "core/orchestrator.h"
#include "core/profile_runner.h"
#include "core/profile_session.h"
#include "core/sequence_transform.h"
#include "core/simulator.h"
#include "core/xmem_estimator.h"
#include "models/zoo.h"

namespace {

using namespace xmem;

const fw::ModelDescriptor& test_model() {
  static const fw::ModelDescriptor kModel = models::build_model("gpt2", 8);
  return kModel;
}

const trace::Trace& test_trace() {
  static const trace::Trace kTrace =
      core::profile_on_cpu(test_model(), fw::OptimizerKind::kAdamW);
  return kTrace;
}

void BM_ProfileOnCpu(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::profile_on_cpu(test_model(), fw::OptimizerKind::kAdamW));
  }
}
BENCHMARK(BM_ProfileOnCpu);

void BM_TraceToJson(benchmark::State& state) {
  const trace::Trace& trace = test_trace();
  std::size_t bytes = 0;
  for (auto _ : state) {
    const std::string json = trace.to_json_string();
    bytes = json.size();
    benchmark::DoNotOptimize(json);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes) *
                          state.iterations());
}
BENCHMARK(BM_TraceToJson);

void BM_TraceFromJson(benchmark::State& state) {
  const std::string json = test_trace().to_json_string();
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::Trace::from_json_string(json));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(json.size()) *
                          state.iterations());
}
BENCHMARK(BM_TraceFromJson);

void BM_Analyzer(benchmark::State& state) {
  const trace::Trace& trace = test_trace();
  core::Analyzer analyzer;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.analyze(trace));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.events.size()));
}
BENCHMARK(BM_Analyzer);

void BM_Orchestrator(benchmark::State& state) {
  const auto analysis = core::Analyzer().analyze(test_trace());
  core::Orchestrator orchestrator;
  for (auto _ : state) {
    benchmark::DoNotOptimize(orchestrator.orchestrate(analysis.timeline));
  }
}
BENCHMARK(BM_Orchestrator);

void BM_Simulator(benchmark::State& state) {
  const auto analysis = core::Analyzer().analyze(test_trace());
  const auto orchestration = core::Orchestrator().orchestrate(analysis.timeline);
  core::MemorySimulator simulator;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.replay(orchestration.sequence));
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(orchestration.sequence.events.size()));
}
BENCHMARK(BM_Simulator);

core::TrainJob test_job() {
  core::TrainJob job;
  job.model_name = "gpt2";
  job.batch_size = 8;
  job.optimizer = fw::OptimizerKind::kAdamW;
  return job;
}

void BM_EndToEndEstimate(benchmark::State& state) {
  // Fresh session every iteration: the full profile->analyze->orchestrate->
  // simulate pipeline, i.e. the pre-service cost of every what-if question.
  const core::TrainJob job = test_job();
  const gpu::DeviceModel device = gpu::rtx3060();
  for (auto _ : state) {
    core::XMemEstimator estimator;
    benchmark::DoNotOptimize(estimator.estimate(job, device));
  }
}
BENCHMARK(BM_EndToEndEstimate);

void BM_ServiceEstimateWarm(benchmark::State& state) {
  // Profile-once/estimate-many: the session holds the profile, the result
  // cache is disabled so every iteration pays a real simulator replay —
  // the marginal cost of one more what-if question through the service.
  core::ServiceOptions options;
  options.threads = 1;
  options.result_cache_capacity = 0;
  core::EstimationService service(options);
  const core::TrainJob job = test_job();
  const gpu::DeviceModel device = gpu::rtx3060();
  service.estimate("xMem", job, device);  // prime the profile session
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.estimate("xMem", job, device));
  }
}
BENCHMARK(BM_ServiceEstimateWarm);

void BM_RankReplay(benchmark::State& state) {
  // The phase-2 refine hot loop: transform one pipeline rank of a
  // (d=2, t=2, p=2) candidate and replay it through the allocator tower.
  // Arg 0 = fresh scratch every replay (the naive loop), arg 1 = reused
  // transform + replay scratch (the batching/caching pass): the delta is
  // what scratch reuse buys per candidate.
  const auto analysis = core::Analyzer().analyze(test_trace());
  const auto orchestration =
      core::Orchestrator().orchestrate(analysis.timeline);
  const std::vector<core::ComponentProfile> profiles =
      core::per_component_profile(analysis.timeline);
  core::DistributedPlanner planner;
  core::HybridOptions hybrid;
  hybrid.data_parallel = 2;
  hybrid.tensor_parallel = 2;
  hybrid.pipeline_stages = 2;
  const core::HybridPlan plan = planner.plan_hybrid(profiles, hybrid);

  const core::SequenceTransformer transformer(orchestration.sequence,
                                              profiles);
  core::RankTransformOptions transform;
  transform.data_parallel = 2;
  transform.tensor_parallel = 2;
  transform.micro_batches = 4;
  transform.materialize_blocks = false;
  core::MemorySimulator simulator;
  const bool reuse = state.range(0) == 1;
  core::RankScratch scratch;
  core::ReplayScratch replay_scratch;
  for (auto _ : state) {
    if (!reuse) {
      scratch = core::RankScratch{};
      replay_scratch = core::ReplayScratch{};
    }
    const core::OrchestratedSequence& sequence = transformer.rank_sequence(
        transform, plan.stages, 2, 0, scratch);
    benchmark::DoNotOptimize(simulator.replay(sequence, {}, &replay_scratch));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RankReplay)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_RankReplayReset(benchmark::State& state) {
  // The tower half of the refine loop in isolation: the same transformed
  // rank sequence replayed per candidate. Arg 0 = fresh driver + backend
  // every replay (the pre-reset rebuild path), arg 1 = backend_reset() on
  // the pooled tower kept in ReplayScratch. The delta is what the reset
  // contract buys each refined candidate.
  const auto analysis = core::Analyzer().analyze(test_trace());
  const auto orchestration =
      core::Orchestrator().orchestrate(analysis.timeline);
  const std::vector<core::ComponentProfile> profiles =
      core::per_component_profile(analysis.timeline);
  core::DistributedPlanner planner;
  core::HybridOptions hybrid;
  hybrid.data_parallel = 2;
  hybrid.tensor_parallel = 2;
  hybrid.pipeline_stages = 2;
  const core::HybridPlan plan = planner.plan_hybrid(profiles, hybrid);
  const core::SequenceTransformer transformer(orchestration.sequence,
                                              profiles);
  core::RankTransformOptions transform;
  transform.data_parallel = 2;
  transform.tensor_parallel = 2;
  transform.micro_batches = 4;
  transform.materialize_blocks = false;
  core::RankScratch rank_scratch;
  const core::OrchestratedSequence sequence =
      transformer.rank_sequence(transform, plan.stages, 2, 0, rank_scratch);

  core::MemorySimulator simulator;
  const bool reset = state.range(0) == 1;
  core::ReplayScratch scratch;
  for (auto _ : state) {
    if (!reset) scratch = core::ReplayScratch{};
    benchmark::DoNotOptimize(simulator.replay(sequence, {}, &scratch));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RankReplayReset)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_PlanRefine(benchmark::State& state) {
  // The two-phase plan search at service granularity on a warm shared
  // session: arg = refine_top_k (0 = analytic-only phase 1). Reported rate
  // is plans/sec; the arg sweep shows what each refined candidate costs on
  // top of the analytic grid (§6.1).
  const auto session = std::make_shared<core::ProfileSession>();
  core::PlanRequest request;
  request.job = test_job();
  request.devices = {gpu::rtx3060(), gpu::a100_40gb()};
  request.max_gpus = 8;
  request.refine_top_k = static_cast<int>(state.range(0));
  {
    core::ServiceOptions warm;
    warm.session = session;
    core::EstimationService(std::move(warm)).plan(request);
  }
  for (auto _ : state) {
    core::ServiceOptions options;
    options.session = session;
    options.result_cache_capacity = 0;
    core::EstimationService service(std::move(options));
    benchmark::DoNotOptimize(service.plan(request));
  }
  state.SetItemsProcessed(state.iterations() *
                          std::max<std::int64_t>(state.range(0), 1));
}
BENCHMARK(BM_PlanRefine)->Arg(0)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_PlanRefineDedup(benchmark::State& state) {
  // The symmetric-rank collapse + cross-candidate memo cache, isolated: the
  // same DP-heavy top-8 refinement with dedup_replays off (arg 0: every
  // d*t sibling replayed individually) vs on (arg 1: one replay per
  // distinct sequence). Items are refined candidates, so the rate delta IS
  // the marginal-cost-per-candidate delta the dedup buys.
  const auto session = std::make_shared<core::ProfileSession>();
  core::PlanRequest request;
  request.job = test_job();
  request.devices = {gpu::rtx3060(), gpu::a100_40gb()};
  request.max_gpus = 8;
  request.refine_top_k = 8;
  request.dedup_replays = state.range(0) == 1;
  {
    core::ServiceOptions warm;
    warm.session = session;
    core::EstimationService(std::move(warm)).plan(request);
  }
  for (auto _ : state) {
    core::ServiceOptions options;
    options.session = session;
    options.result_cache_capacity = 0;
    core::EstimationService service(std::move(options));
    benchmark::DoNotOptimize(service.plan(request));
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_PlanRefineDedup)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_PlanRefineAll(benchmark::State& state) {
  // Full-search refinement: replay every enumerated decomposition instead
  // of the top-K — the mode the memoization exists to make affordable.
  const auto session = std::make_shared<core::ProfileSession>();
  core::PlanRequest request;
  request.job = test_job();
  request.devices = {gpu::rtx3060(), gpu::a100_40gb()};
  request.max_gpus = 8;
  request.refine_all = true;
  {
    core::ServiceOptions warm;
    warm.session = session;
    core::EstimationService(std::move(warm)).plan(request);
  }
  std::size_t replayed = 0;
  for (auto _ : state) {
    core::ServiceOptions options;
    options.session = session;
    options.result_cache_capacity = 0;
    core::EstimationService service(std::move(options));
    const core::PlanReport report = service.plan(request);
    replayed = report.replayed_candidates;
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(replayed));
}
BENCHMARK(BM_PlanRefineAll)->Unit(benchmark::kMillisecond);

void BM_ServiceSweep(benchmark::State& state) {
  // A scheduler-shaped question: 3 devices x 3 allocators in one request.
  // One profile + 9 concurrent replays per iteration (fresh service each
  // time, so the profile cost is inside the measurement).
  core::EstimateRequest request;
  request.job = test_job();
  request.devices = gpu::all_devices();
  request.allocators = alloc::backend_names();
  for (auto _ : state) {
    core::EstimationService service;
    benchmark::DoNotOptimize(service.sweep(request));
  }
}
BENCHMARK(BM_ServiceSweep);

}  // namespace

BENCHMARK_MAIN();
