// google-benchmark microbenchmarks for the xMem pipeline stages (§6.1:
// "the current runtime is dominated by trace processing"): profiling,
// JSON serialization/parsing, analysis, orchestration, simulation, and the
// end-to-end estimate, on a representative mid-size workload.
#include <benchmark/benchmark.h>

#include "core/analyzer.h"
#include "core/orchestrator.h"
#include "core/profile_runner.h"
#include "core/simulator.h"
#include "core/xmem_estimator.h"
#include "models/zoo.h"

namespace {

using namespace xmem;

const fw::ModelDescriptor& test_model() {
  static const fw::ModelDescriptor kModel = models::build_model("gpt2", 8);
  return kModel;
}

const trace::Trace& test_trace() {
  static const trace::Trace kTrace =
      core::profile_on_cpu(test_model(), fw::OptimizerKind::kAdamW);
  return kTrace;
}

void BM_ProfileOnCpu(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::profile_on_cpu(test_model(), fw::OptimizerKind::kAdamW));
  }
}
BENCHMARK(BM_ProfileOnCpu);

void BM_TraceToJson(benchmark::State& state) {
  const trace::Trace& trace = test_trace();
  std::size_t bytes = 0;
  for (auto _ : state) {
    const std::string json = trace.to_json_string();
    bytes = json.size();
    benchmark::DoNotOptimize(json);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes) *
                          state.iterations());
}
BENCHMARK(BM_TraceToJson);

void BM_TraceFromJson(benchmark::State& state) {
  const std::string json = test_trace().to_json_string();
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::Trace::from_json_string(json));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(json.size()) *
                          state.iterations());
}
BENCHMARK(BM_TraceFromJson);

void BM_Analyzer(benchmark::State& state) {
  const trace::Trace& trace = test_trace();
  core::Analyzer analyzer;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.analyze(trace));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.events.size()));
}
BENCHMARK(BM_Analyzer);

void BM_Orchestrator(benchmark::State& state) {
  const auto analysis = core::Analyzer().analyze(test_trace());
  core::Orchestrator orchestrator;
  for (auto _ : state) {
    benchmark::DoNotOptimize(orchestrator.orchestrate(analysis.timeline));
  }
}
BENCHMARK(BM_Orchestrator);

void BM_Simulator(benchmark::State& state) {
  const auto analysis = core::Analyzer().analyze(test_trace());
  const auto orchestration = core::Orchestrator().orchestrate(analysis.timeline);
  core::MemorySimulator simulator;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.replay(orchestration.sequence));
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(orchestration.sequence.events.size()));
}
BENCHMARK(BM_Simulator);

void BM_EndToEndEstimate(benchmark::State& state) {
  core::XMemEstimator estimator;
  core::TrainJob job;
  job.model_name = "gpt2";
  job.batch_size = 8;
  job.optimizer = fw::OptimizerKind::kAdamW;
  const gpu::DeviceModel device = gpu::rtx3060();
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.estimate(job, device));
  }
}
BENCHMARK(BM_EndToEndEstimate);

}  // namespace

BENCHMARK_MAIN();
