// Shared experiment scoping for the evaluation benches: the paper's full
// ANOVA grid and Monte Carlo sampling, with a --fast mode that thins the
// grids for quick runs (shape-preserving, smaller n).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "eval/harness.h"
#include "models/workload.h"
#include "models/zoo.h"

namespace xmem::benchutil {

struct EvalScope {
  int anova_repeats = 5;
  int batch_stride = 1;  ///< take every k-th batch size from Table 2 grids
  std::size_t mc_runs = 1306;  ///< the paper's Monte Carlo count
  bool fast = false;
  bool ablation = false;

  static EvalScope from_args(int argc, char** argv) {
    EvalScope scope;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--fast") {
        scope.fast = true;
        scope.anova_repeats = 2;
        scope.batch_stride = 3;
        scope.mc_runs = 150;
      } else if (arg == "--ablation") {
        scope.ablation = true;
      }
    }
    return scope;
  }
};

/// Table 2 grid for the given models, thinned by `stride`.
inline std::vector<models::TrainConfig> thinned_grid(
    const std::vector<std::string>& model_names, int stride) {
  std::vector<models::TrainConfig> grid;
  for (const auto& model : model_names) {
    for (const auto optimizer : models::optimizers_for(model)) {
      const auto batches = models::batch_grid_for(model);
      for (std::size_t i = 0; i < batches.size();
           i += static_cast<std::size_t>(stride)) {
        grid.push_back(models::TrainConfig{
            model, optimizer, batches[i],
            fw::ZeroGradPlacement::kPos1IterStart});
      }
    }
  }
  return grid;
}

inline eval::EvalHarness make_harness(const EvalScope& scope,
                                      bool with_llmem = true,
                                      bool with_schedtune = true) {
  eval::HarnessOptions options;
  options.repeats = scope.anova_repeats;
  options.use_llmem = with_llmem;
  options.use_schedtune = with_schedtune;
  options.ablate_orchestrator = scope.ablation;
  return eval::EvalHarness(options);
}

}  // namespace xmem::benchutil
