// Ablation bench (DESIGN.md §5): quantify each design choice the paper
// motivates but does not isolate numerically.
//
//   1. Orchestrator off  — raw CPU lifecycles straight into the Simulator
//                          (is §3.3 necessary?)
//   2. cuDNN benchmark   — a GPU-only divergence (iteration-1 algorithm
//                          search) invisible to any CPU trace: how much
//                          error does it add when users enable it?
//   3. One-level vs two-level allocator — DNNMem is effectively the
//                          one-level ablation (compare its row in fig07);
//                          the tensor-sum bound appears in fig06.
#include <cstdio>
#include <vector>

#include "core/xmem_estimator.h"
#include "eval_scope.h"
#include "eval/report.h"
#include "gpu/ground_truth.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace xmem;
  const auto scope = benchutil::EvalScope::from_args(argc, argv);

  // ---- Ablation 1: Orchestrator off, POS0 workloads (where lifecycle
  // re-timing matters most) ----
  std::printf("Ablation 1: Memory Orchestrator on/off (POS0 placement)\n\n");
  struct Case {
    const char* model;
    int batch;
    fw::OptimizerKind optimizer;
  };
  const std::vector<Case> cases = {
      {"Qwen3-0.6B", 2, fw::OptimizerKind::kSgd},
      {"pythia-1b", 1, fw::OptimizerKind::kAdafactor},
      {"ConvNeXtBase", 400, fw::OptimizerKind::kSgd},
      {"gpt2", 10, fw::OptimizerKind::kSgd},
      {"ResNet152", 300, fw::OptimizerKind::kAdamW},
      {"opt-350m", 5, fw::OptimizerKind::kSgd},
  };
  core::XMemOptions on;
  core::XMemOptions off;
  off.orchestrate = false;
  core::XMemEstimator with_orch(on);
  core::XMemEstimator without_orch(off);
  gpu::GroundTruthRunner runner;

  std::vector<double> errors_on, errors_off;
  std::printf("%-16s %6s %-9s %10s %12s %12s\n", "model", "batch", "optim",
              "truth(MB)", "orch err%", "no-orch err%");
  for (const Case& c : cases) {
    core::TrainJob job;
    job.model_name = c.model;
    job.batch_size = c.batch;
    job.optimizer = c.optimizer;
    job.placement = fw::ZeroGradPlacement::kPos0BeforeBackward;
    job.seed = 11;

    const fw::ModelDescriptor model = models::build_model(c.model, c.batch);
    gpu::GroundTruthOptions gt;
    gt.placement = job.placement;
    gt.seed = 11;
    const auto truth = runner.run(model, c.optimizer, gpu::rtx3060(), gt);
    if (truth.oom) continue;

    const auto est_on = with_orch.estimate(job, gpu::rtx3060());
    const auto est_off = without_orch.estimate(job, gpu::rtx3060());
    const auto err = [&](std::int64_t estimate) {
      return 100.0 *
             std::abs(static_cast<double>(estimate - truth.peak_job_bytes)) /
             static_cast<double>(truth.peak_job_bytes);
    };
    errors_on.push_back(err(est_on.estimated_peak));
    errors_off.push_back(err(est_off.estimated_peak));
    std::printf("%-16s %6d %-9s %10.0f %12.2f %12.2f\n", c.model, c.batch,
                to_string(c.optimizer),
                static_cast<double>(truth.peak_job_bytes) / 1048576.0,
                errors_on.back(), errors_off.back());
  }
  std::printf("\nmedian error: Orchestrator ON %.2f%%  |  OFF %.2f%%\n\n",
              util::median(errors_on), util::median(errors_off));

  // ---- Ablation 2: cuDNN benchmark mode (GPU-only divergence) ----
  std::printf("Ablation 2: cudnn.benchmark=True ground truth vs xMem "
              "(CPU traces cannot see iteration-1 algorithm search)\n\n");
  std::printf("%-16s %6s %14s %14s %10s\n", "model", "batch", "GT off (MB)",
              "GT bench (MB)", "residue");
  for (const Case& c : {Case{"VGG19", 400, fw::OptimizerKind::kSgd},
                        Case{"ResNet152", 300, fw::OptimizerKind::kSgd},
                        Case{"RegNetX400MF", 600, fw::OptimizerKind::kSgd}}) {
    const fw::ModelDescriptor model = models::build_model(c.model, c.batch);
    gpu::GroundTruthOptions gt_off;
    gt_off.seed = 11;
    gpu::GroundTruthOptions gt_bench = gt_off;
    gt_bench.cudnn_benchmark = true;
    const auto off_run = runner.run(model, c.optimizer, gpu::rtx3060(), gt_off);
    const auto bench_run =
        runner.run(model, c.optimizer, gpu::rtx3060(), gt_bench);
    if (off_run.oom || bench_run.oom) continue;
    std::printf("%-16s %6d %14.0f %14.0f %9.1f%%\n", c.model, c.batch,
                static_cast<double>(off_run.peak_job_bytes) / 1048576.0,
                static_cast<double>(bench_run.peak_job_bytes) / 1048576.0,
                100.0 *
                    static_cast<double>(bench_run.peak_job_bytes -
                                        off_run.peak_job_bytes) /
                    static_cast<double>(off_run.peak_job_bytes));
  }
  std::printf("\nAt CIFAR-scale inputs the trial workspaces are largely "
              "covered by the later backward workspaces, so the residue "
              "stays small; it grows with input resolution. Either way it "
              "is invisible to a CPU trace, which is why the substrate "
              "keeps benchmark mode off by default (PyTorch's default "
              "too).\n");
  (void)scope;
  return 0;
}
