// Figure 6 reproduction: compare the real segment usage over time (from the
// ground-truth run's snapshot-style series — the paper uses the PyTorch
// Snapshot Profiler) against xMem's simulated segment usage, for the same
// three models the paper plots.
//
// Also reports the Horus-style "sum of live tensors" lower bound (the
// no-allocator ablation from DESIGN.md §5) to show why allocator modelling
// matters.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "core/xmem_estimator.h"
#include "gpu/ground_truth.h"
#include "models/zoo.h"
#include "util/bytes.h"

int main() {
  using namespace xmem;
  struct Workload {
    const char* model;
    int batch;
    fw::OptimizerKind optimizer;
  };
  const Workload workloads[] = {
      {"distilgpt2", 10, fw::OptimizerKind::kAdamW},
      {"gpt-neo-125M", 10, fw::OptimizerKind::kAdamW},
      {"ConvNeXtBase", 500, fw::OptimizerKind::kAdamW},
  };
  const gpu::DeviceModel device = gpu::rtx3060();
  std::printf("Figure 6: real vs simulated segment usage (device: %s)\n\n",
              device.name.c_str());

  for (const Workload& w : workloads) {
    // Real: ground-truth run with series recording.
    const fw::ModelDescriptor model = models::build_model(w.model, w.batch);
    gpu::GroundTruthRunner runner;
    gpu::GroundTruthOptions gt_options;
    gt_options.record_series = true;
    gt_options.seed = 33;
    const gpu::GroundTruthResult real =
        runner.run(model, w.optimizer, device, gt_options);

    // Simulated: the full xMem pipeline with curve output.
    core::TrainJob job;
    job.model_name = w.model;
    job.batch_size = w.batch;
    job.optimizer = w.optimizer;
    job.seed = 33;
    core::XMemEstimator estimator;
    const auto artifacts = estimator.run_pipeline(job, /*record_series=*/true);

    std::printf("%s (batch %d, %s):\n", w.model, w.batch,
                to_string(w.optimizer));
    if (real.oom) {
      std::printf("  ground truth OOM; skipping curve comparison\n\n");
      continue;
    }
    // Tensor-sum lower bound (Horus-style): peak of live tensor bytes.
    const std::int64_t tensor_sum_peak = artifacts.simulation.peak_allocated;

    std::printf("  real  segment curve |%s| peak %s\n",
                benchutil::sparkline(
                    benchutil::downsample_max(real.reserved_series, 72))
                    .c_str(),
                util::format_bytes(real.peak_reserved_exact).c_str());
    std::printf("  sim   segment curve |%s| peak %s\n",
                benchutil::sparkline(benchutil::downsample_max(
                                         artifacts.simulation.reserved_series,
                                         72))
                    .c_str(),
                util::format_bytes(artifacts.simulation.peak_reserved).c_str());
    const double correlation = benchutil::curve_correlation(
        real.reserved_series, artifacts.simulation.reserved_series);
    const double peak_error =
        100.0 *
        std::abs(static_cast<double>(artifacts.simulation.peak_reserved -
                                     real.peak_reserved_exact)) /
        static_cast<double>(real.peak_reserved_exact);
    std::printf("  curve correlation %.3f; segment-peak error %.2f%%\n",
                correlation, peak_error);
    std::printf("  tensor-sum-only estimate (no allocator model): %s "
                "(misses %s of segment memory)\n\n",
                util::format_bytes(tensor_sum_peak).c_str(),
                util::format_bytes(real.peak_reserved_exact - tensor_sum_peak)
                    .c_str());
  }
  std::printf("Paper shape: simulated segment curves track the snapshot "
              "profiler's real curves closely for all three models.\n");
  return 0;
}
