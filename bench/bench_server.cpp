// Load generator for the `xmem serve` daemon: sustained requests/sec and
// p50/p99 latency over a mixed sweep/plan workload.
//
// An in-process server (in-process so CI needs no process management, but
// over the REAL Unix socket + framing path every external client uses)
// takes a fixed schedule from N client threads: a small set of distinct
// requests, every duplicate of which must be absorbed by coalescing or the
// reply cache. The printed counters pin the profile-once economy under
// load — profiles_run == distinct jobs and executed == distinct keys no
// matter how many clients ask — and are golden-diffed by
// ci/build_and_test.sh; the wall-clock numbers (requests/sec, latency
// percentiles) print with six decimals so the golden normalizer maps them
// to <runtime>, pinning table structure without pinning timings.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/estimation_service.h"
#include "gpu/device_model.h"
#include "server/client.h"
#include "server/server.h"
#include "util/json.h"

namespace {

using namespace xmem;

core::TrainJob job_for_batch(int batch) {
  core::TrainJob job;
  job.model_name = "distilgpt2";
  job.batch_size = batch;
  job.optimizer = fw::OptimizerKind::kAdamW;
  job.seed = 7;
  return job;
}

std::string sweep_payload(int batch) {
  core::EstimateRequest request;
  request.job = job_for_batch(batch);
  request.devices = {gpu::device_by_name("rtx3060")};
  util::Json envelope = util::Json::object();
  envelope["type"] = util::Json("sweep");
  envelope["request"] = request.to_json();
  return envelope.dump();
}

std::string plan_payload(int batch) {
  core::PlanRequest request;
  request.job = job_for_batch(batch);
  request.devices = {gpu::device_by_name("rtx3060")};
  request.max_gpus = 2;
  request.refine_top_k = 0;
  util::Json envelope = util::Json::object();
  envelope["type"] = util::Json("plan");
  envelope["request"] = request.to_json();
  return envelope.dump();
}

double percentile_ms(std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted_ms.size() - 1) / 100.0 + 0.5);
  return sorted_ms[std::min(rank, sorted_ms.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  const bool fast = benchutil::has_flag(argc, argv, "--fast");
  const int clients = fast ? 6 : 8;
  const int requests_per_client = fast ? 40 : 250;

  server::ServerConfig config;
  config.socket_path =
      "/tmp/xmem_bench_server_" + std::to_string(::getpid()) + ".sock";
  config.workers = 4;
  config.max_queue = 512;
  server::Server daemon(config);
  daemon.start();

  // 4 sweeps + 2 plans on disjoint jobs: 6 distinct request keys, every
  // other arrival is a duplicate the server must absorb without work.
  std::vector<std::string> payloads;
  for (int batch = 1; batch <= 4; ++batch) {
    payloads.push_back(sweep_payload(batch));
  }
  for (int batch = 5; batch <= 6; ++batch) {
    payloads.push_back(plan_payload(batch));
  }

  std::vector<std::vector<double>> latencies_ms(
      static_cast<std::size_t>(clients));
  std::vector<int> ok_replies(static_cast<std::size_t>(clients), 0);
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      server::Client client(config.socket_path, /*timeout_ms=*/120000);
      auto& mine = latencies_ms[static_cast<std::size_t>(t)];
      mine.reserve(static_cast<std::size_t>(requests_per_client));
      for (int i = 0; i < requests_per_client; ++i) {
        const std::string& payload =
            payloads[static_cast<std::size_t>(t * 3 + i) % payloads.size()];
        const auto start = std::chrono::steady_clock::now();
        std::string reply;
        if (!client.send_frame(payload) ||
            client.read_reply(reply) != server::FrameStatus::kOk) {
          continue;  // dropped reply: shows up as ok_replies < total
        }
        const auto stop = std::chrono::steady_clock::now();
        mine.push_back(
            std::chrono::duration<double, std::milli>(stop - start).count());
        if (reply.find("\"ok\":true") != std::string::npos) {
          ++ok_replies[static_cast<std::size_t>(t)];
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  std::vector<double> all_ms;
  int total_ok = 0;
  for (int t = 0; t < clients; ++t) {
    const auto& mine = latencies_ms[static_cast<std::size_t>(t)];
    all_ms.insert(all_ms.end(), mine.begin(), mine.end());
    total_ok += ok_replies[static_cast<std::size_t>(t)];
  }
  std::sort(all_ms.begin(), all_ms.end());

  const server::ServerStats stats = daemon.stats();
  daemon.stop();

  const int total = clients * requests_per_client;
  std::printf("xmem serve load generator (unix socket, mixed sweep/plan)\n\n");
  std::printf("clients %d x requests %d = %d requests\n", clients,
              requests_per_client, total);
  std::printf("distinct request keys: %zu\n", payloads.size());
  std::printf("ok replies: %d  errors: %d\n", total_ok, total - total_ok);
  std::printf("profiles_run: %llu  executed: %llu  coalesced: %llu\n",
              static_cast<unsigned long long>(stats.profiles_run),
              static_cast<unsigned long long>(stats.executed),
              static_cast<unsigned long long>(stats.coalesced_total()));
  std::printf("busy_rejections: %llu  protocol_errors: %llu\n",
              static_cast<unsigned long long>(stats.busy_rejections),
              static_cast<unsigned long long>(stats.protocol_errors));
  std::printf("sustained requests/sec: %.6f\n",
              static_cast<double>(total) / wall_seconds);
  std::printf("latency ms: p50 %.6f  p99 %.6f  max %.6f\n",
              percentile_ms(all_ms, 50.0), percentile_ms(all_ms, 99.0),
              all_ms.empty() ? 0.0 : all_ms.back());
  return 0;
}
