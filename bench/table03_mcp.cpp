// Table 3 reproduction (RQ3, memory conservation): average MCP in GB per
// architecture class, from Monte Carlo runs only (as in the paper — MCP is
// meant to reflect unpredictable real-world mixes). Eq. 7 charges a
// -M^max_d penalty for every run whose estimate failed validation, which is
// what drives SchedTune's Transformer MCP negative.
#include <cstdio>

#include "eval_scope.h"
#include "eval/report.h"

int main(int argc, char** argv) {
  using namespace xmem;
  const auto scope = benchutil::EvalScope::from_args(argc, argv);
  auto harness = benchutil::make_harness(scope);

  std::vector<std::string> all_models = models::cnn_model_names();
  for (const auto& name : models::transformer_model_names()) {
    all_models.push_back(name);
  }
  std::vector<eval::RunRecord> records;
  const std::size_t runs = harness.run_monte_carlo(
      all_models, {gpu::rtx3060(), gpu::rtx4060()}, scope.mc_runs, records);

  std::printf("Table 3: Memory Conservation Potential (Monte Carlo, %zu "
              "runs%s)\n\n",
              runs, scope.fast ? ", --fast scope" : "");
  std::printf("%s\n",
              eval::render_mcp_table(records, harness.estimator_names())
                  .c_str());
  std::printf("Paper values (GB): CNN  DNNMem 3.08, SchedTune 5.81, LLMem "
              "N/A, xMem 8.67\n");
  std::printf("                   TF   DNNMem 1.29, SchedTune -4.42, LLMem "
              "1.68, xMem 7.07\n");
  std::printf("                   All  DNNMem 2.11, SchedTune 0.38, LLMem "
              "1.69, xMem 7.82\n");
  std::printf("Expected shape: xMem highest in every row; SchedTune negative "
              "for Transformers (cold-start OOM penalties).\n");
  return 0;
}
