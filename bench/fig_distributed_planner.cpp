// Distributed-planner figure (§6.2 scale-out): how the per-rank peak of
// the best DP x TP x PP decomposition falls as the GPU budget grows, and
// what each ZeRO stage buys at the full budget — all derived from ONE CPU
// profile per model through the EstimationService plan search.
//
// Deterministic in --fast and full scope (integer component arithmetic on
// seeded profiles; no wall-clock fields printed), so CI golden-diffs the
// output like the other fig* programs.
#include <cstdio>
#include <string>
#include <vector>

#include "core/estimation_service.h"
#include "eval_scope.h"
#include "util/bytes.h"

int main(int argc, char** argv) {
  using namespace xmem;
  const auto scope = benchutil::EvalScope::from_args(argc, argv);
  const std::vector<std::pair<std::string, int>> jobs =
      scope.fast ? std::vector<std::pair<std::string, int>>{
                       {"distilgpt2", 5}, {"gpt2", 4}}
                 : std::vector<std::pair<std::string, int>>{
                       {"distilgpt2", 5}, {"gpt2", 8}, {"pythia-1b", 4}};

  std::printf("Distributed planner: best decomposition per GPU budget "
              "(1F1B, 4 micro-batches, ZeRO-1)\n");
  for (const auto& [model, batch] : jobs) {
    core::PlanRequest request;
    request.job.model_name = model;
    request.job.batch_size = batch;
    request.job.optimizer = fw::OptimizerKind::kAdamW;
    request.job.seed = 7;
    request.devices = {gpu::rtx3060(), gpu::rtx4060(), gpu::a100_40gb()};
    request.zero = core::ZeroStage::kOptimizer;
    request.max_gpus = scope.fast ? 8 : 16;
    request.refine_top_k = 4;

    core::EstimationService service;
    const core::PlanReport report = service.plan(request);

    std::printf("\n%s (single-device analytic peak %s, replay peak %s)\n",
                request.job.label().c_str(),
                util::format_bytes(report.single_device_peak).c_str(),
                util::format_bytes(
                    report.single_device_entries.front().estimated_peak)
                    .c_str());
    std::printf("%6s %4s %4s %4s %14s %8s %s\n", "budget", "dp", "tp", "pp",
                "per-rank peak", "savings", "fits(3060/4060/a100)");

    for (int budget = 1; budget <= request.max_gpus; budget *= 2) {
      // Lowest per-rank peak reachable within this sub-budget (first in
      // report order on ties, so the figure is deterministic).
      const core::PlanCandidate* best = nullptr;
      for (const core::PlanCandidate& candidate : report.candidates) {
        if (candidate.plan.gpus <= budget &&
            (best == nullptr ||
             candidate.plan.per_rank_peak < best->plan.per_rank_peak)) {
          best = &candidate;
        }
      }
      if (best == nullptr) continue;
      std::string verdicts;
      for (std::size_t d = 0; d < report.devices.size(); ++d) {
        verdicts += best->device_fits[d] ? 'Y' : 'n';
      }
      std::printf("%6d %4d %4d %4d %14s %7d%% %s\n", budget,
                  best->plan.data_parallel, best->plan.tensor_parallel,
                  best->plan.pipeline_stages,
                  util::format_bytes(best->plan.per_rank_peak).c_str(),
                  best->savings_pct, verdicts.c_str());
    }
    // Phase-2 fidelity columns: what replaying each top candidate's rank
    // sequences through the allocator tower adds over the analytic model
    // (round-up, caching, fragmentation, and non-component blocks).
    std::printf("%4s %4s %4s %14s %14s %6s %s\n", "dp", "tp", "pp",
                "analytic", "replayed", "delta", "verdict");
    for (const core::PlanCandidate& candidate : report.candidates) {
      if (!candidate.replayed) continue;
      std::printf("%4d %4d %4d %14s %14s %5d%% %s\n",
                  candidate.plan.data_parallel, candidate.plan.tensor_parallel,
                  candidate.plan.pipeline_stages,
                  util::format_bytes(candidate.plan.per_rank_peak).c_str(),
                  util::format_bytes(candidate.replayed_per_rank_peak).c_str(),
                  candidate.analytic_vs_replayed_pct,
                  candidate.verdict_changed ? "CHANGED" : "same");
    }
    std::printf("profiles_run: %zu  candidates: %zu  replayed: %zu\n",
                report.profiles_run, report.candidates_evaluated,
                report.replayed_candidates);
    std::printf("rank_replays: %zu  replays_deduped: %zu\n",
                report.rank_replays_run, report.replays_deduped);

    // Overlap-window fidelity: the same search with comm_overlap re-ranks
    // the refined prefix by window-replayed peaks (schedule-tied collective
    // lifetimes instead of resident staging buffers). The table shows what
    // the windows shave off the resident replay and how many candidates
    // the re-ranking moved.
    request.comm_overlap = true;
    core::EstimationService window_service;
    const core::PlanReport window_report = window_service.plan(request);
    std::printf("overlap windows (comm_overlap):\n");
    std::printf("%4s %4s %4s %14s %14s %6s\n", "dp", "tp", "pp", "window",
                "resident", "delta");
    for (const core::PlanCandidate& candidate : window_report.candidates) {
      if (!candidate.replayed) continue;
      std::printf("%4d %4d %4d %14s %14s %5d%%\n",
                  candidate.plan.data_parallel, candidate.plan.tensor_parallel,
                  candidate.plan.pipeline_stages,
                  util::format_bytes(candidate.replayed_per_rank_peak).c_str(),
                  util::format_bytes(candidate.resident_per_rank_peak).c_str(),
                  candidate.window_vs_resident_pct);
    }
    std::printf("rerank_changed: %zu of %zu refined\n",
                window_report.rerank_changed, window_report.replayed_candidates);
  }
  std::printf("\nExpected shape: per-rank peak falls monotonically with the "
              "budget; pipeline splits dominate small budgets, hybrid "
              "DPxTPxPP wins at the top end.\n");
  return 0;
}
