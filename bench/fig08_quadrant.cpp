// Figure 8 reproduction (RQ2, reliability): four-quadrant analysis plotting
// each model's PEF (probability of estimation failure, Eq. 6 with i=2)
// against its MRE, split at the paper's 20%/20% thresholds:
//   bottom-left  Optimal          (low PEF, low MRE)
//   top-left     Overestimation   (low PEF, high MRE)
//   bottom-right Underestimation  (high PEF, low MRE)
//   top-right    Worst
// 8a uses ANOVA runs; 8b Monte Carlo runs.
#include <cstdio>

#include "eval_scope.h"
#include "eval/report.h"

int main(int argc, char** argv) {
  using namespace xmem;
  auto scope = benchutil::EvalScope::from_args(argc, argv);
  if (!scope.fast) {
    // Default scope for this bench: a 3-repeat, thinned grid keeps the
    // quadrant statistics meaningful at a fraction of fig07's runtime
    // (pass --fast for an even smaller scope).
    scope.anova_repeats = 3;
    scope.batch_stride = 2;
    scope.mc_runs = 600;
  }
  auto harness = benchutil::make_harness(scope);

  std::printf("Figure 8: PEF vs MRE quadrants (thresholds 20%% / 20%%)\n\n");

  std::vector<eval::RunRecord> anova_records;
  std::vector<std::string> all_models = models::cnn_model_names();
  for (const auto& name : models::transformer_model_names()) {
    all_models.push_back(name);
  }
  const auto grid = benchutil::thinned_grid(all_models, scope.batch_stride);
  const std::size_t anova_runs =
      harness.run_anova(grid, gpu::rtx3060(), anova_records);
  std::printf("ANOVA runs: %zu\n", anova_runs);
  std::printf("%s\n", eval::render_quadrants(anova_records,
                                             harness.estimator_names(),
                                             "Fig. 8a  ANOVA results")
                          .c_str());

  std::vector<eval::RunRecord> mc_records;
  const std::size_t mc_runs = harness.run_monte_carlo(
      all_models, {gpu::rtx3060(), gpu::rtx4060()}, scope.mc_runs, mc_records);
  std::printf("Monte Carlo runs: %zu\n", mc_runs);
  std::printf("%s\n", eval::render_quadrants(mc_records,
                                             harness.estimator_names(),
                                             "Fig. 8b  Monte Carlo results")
                          .c_str());

  std::printf("Paper shape: xMem dominates the Optimal quadrant (15/22 "
              "ANOVA, 18/22 Monte Carlo; MRE always < 10%%); DNNMem "
              "scatters into Underestimation/Worst; SchedTune polarizes; "
              "LLMem scatters.\n");
  return 0;
}
