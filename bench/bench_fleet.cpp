// Fleet packing at scale: 1000 jobs drawn from 5 archetypes onto a
// 48-GPU heterogeneous fleet, once per packing policy.
//
// The printed counters pin the subsystem's two promises and are
// golden-diffed by ci/build_and_test.sh:
//   * profile-once at fleet scale — the whole 1000-job run costs exactly
//     5 CPU profiles (one per archetype), every later pack reuses them;
//   * estimate-driven packing beats whole-GPU reservation — admitted
//     jobs, utilization, and true-peak waste per policy, audited against
//     simulated ground truth (whole-gpu must show strictly lower
//     utilization than best-fit-decreasing).
// Pack wall-clock (jobs/sec) prints with six decimals so the golden
// normalizer maps it to <runtime>: structure and counters are pinned,
// timings are not.
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/estimation_service.h"
#include "gpu/ground_truth.h"
#include "models/zoo.h"
#include "sched/fleet_planner.h"
#include "util/bytes.h"

namespace {

using namespace xmem;

core::TrainJob archetype(const std::string& model, int batch,
                         fw::OptimizerKind optimizer) {
  core::TrainJob job;
  job.model_name = model;
  job.batch_size = batch;
  job.optimizer = optimizer;
  job.seed = 1;  // xMem bounds the seed-1 truth on every archetype here,
                 // so a zero OOM column is the estimates' doing, not luck
  return job;
}

/// True peak per archetype x device model, memoized (15 simulator runs
/// serve every audit below).
class TruthOracle {
 public:
  std::int64_t peak(const core::TrainJob& job, const gpu::DeviceModel& device) {
    const std::string key = job.label() + "|" + device.name;
    const auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
    const fw::ModelDescriptor model =
        models::build_model(job.model_name, job.batch_size);
    gpu::GroundTruthOptions options;
    options.placement = job.placement;
    options.seed = job.seed;
    const auto truth = runner_.run(model, job.optimizer, device, options);
    const std::int64_t peak =
        truth.oom ? device.job_budget() : truth.peak_job_bytes;
    return cache_.emplace(key, peak).first->second;
  }

 private:
  gpu::GroundTruthRunner runner_;
  std::map<std::string, std::int64_t> cache_;
};

/// Replay admitted placements with true peaks: GPUs that would really OOM,
/// and budget bytes the policy left idle on the healthy ones.
void audit(const sched::FleetRequest& request,
           const sched::FleetReport& report, TruthOracle& oracle,
           int& oom_gpus, std::int64_t& wasted_bytes) {
  std::map<std::pair<std::size_t, int>, std::int64_t> true_used;
  for (const sched::JobVerdict& verdict : report.verdicts) {
    if (verdict.verdict != sched::Verdict::kAdmit) continue;
    const std::size_t index =
        static_cast<std::size_t>(&verdict - report.verdicts.data());
    const core::TrainJob& job = request.jobs[index].job;
    for (const sched::Placement& placement : verdict.placements) {
      const std::int64_t true_peak =
          oracle.peak(job, request.pools[placement.pool].device);
      true_used[{placement.pool, placement.index}] +=
          verdict.gpus > 1 ? true_peak / verdict.gpus : true_peak;
    }
  }
  oom_gpus = 0;
  wasted_bytes = 0;
  for (const sched::GpuState& gpu : report.gpus) {
    const auto it = true_used.find({gpu.pool, gpu.index});
    const std::int64_t used = it == true_used.end() ? 0 : it->second;
    if (used > gpu.budget_bytes) {
      oom_gpus += 1;
    } else {
      wasted_bytes += gpu.budget_bytes - used;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  (void)benchutil::has_flag(argc, argv, "--fast");  // same scope either way

  const std::vector<core::TrainJob> archetypes = {
      archetype("distilgpt2", 5, fw::OptimizerKind::kAdamW),
      archetype("distilgpt2", 10, fw::OptimizerKind::kSgd),
      archetype("gpt2", 5, fw::OptimizerKind::kAdamW),
      archetype("MobileNetV2", 200, fw::OptimizerKind::kSgd),
      archetype("T5-small", 5, fw::OptimizerKind::kAdamW),
  };
  constexpr int kJobs = 1000;

  sched::FleetRequest request;
  for (int i = 0; i < kJobs; ++i) {
    sched::FleetJob fleet_job;
    fleet_job.id = "job-" + std::to_string(i);
    fleet_job.job = archetypes[static_cast<std::size_t>(i) %
                               archetypes.size()];
    // A sprinkle of priorities exercises the priority-major ordering.
    fleet_job.priority = i % 7 == 0 ? 1 : 0;
    request.jobs.push_back(fleet_job);
  }
  request.pools = {{gpu::rtx3060(), 24},
                   {gpu::rtx4060(), 16},
                   {gpu::a100_40gb(), 8}};
  request.headroom.base.percent = 5;
  request.max_gpus_per_job = 1;

  std::printf("fleet packing bench: %d jobs (%zu archetypes) -> 48 GPUs\n\n",
              kJobs, archetypes.size());

  // ONE service across every policy: the first pack profiles each
  // archetype once, the rest run on cached estimates.
  core::EstimationService service;
  TruthOracle oracle;

  std::printf("%-22s %9s %9s %9s %6s %9s %11s %10s\n", "policy", "admitted",
              "deferred", "rejected", "util", "OOM GPUs", "true waste",
              "jobs/sec");
  std::map<std::string, sched::FleetStats> stats_by_policy;
  std::size_t first_pack_profiles = 0;
  bool first = true;
  for (const std::string& policy : sched::packing_policy_names()) {
    sched::FleetRequest variant = request;
    variant.policy = policy;
    const auto start = std::chrono::steady_clock::now();
    const sched::FleetReport report = service.fleet(variant);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    if (first) {
      first_pack_profiles = report.counters.profiles_run;
      first = false;
    }
    int oom_gpus = 0;
    std::int64_t wasted = 0;
    audit(variant, report, oracle, oom_gpus, wasted);
    stats_by_policy[policy] = report.stats;
    std::printf("%-22s %9d %9d %9d %5d%% %9d %11s %10.6f\n", policy.c_str(),
                report.stats.admitted, report.stats.deferred,
                report.stats.rejected, report.stats.utilization_pct, oom_gpus,
                util::format_bytes(wasted).c_str(),
                static_cast<double>(kJobs) / seconds);
  }

  const sched::FleetStats& bfd = stats_by_policy["best-fit-decreasing"];
  const sched::FleetStats& whole = stats_by_policy["whole-gpu"];
  std::printf(
      "\nprofile-once: first pack ran %llu CPU profiles for %d jobs "
      "(distinct archetypes: %d)\n",
      static_cast<unsigned long long>(first_pack_profiles), kJobs,
      bfd.distinct_jobs);
  std::printf("whole-gpu vs best-fit-decreasing utilization: %d%% vs %d%% "
              "(%s)\n",
              whole.utilization_pct, bfd.utilization_pct,
              whole.utilization_pct < bfd.utilization_pct
                  ? "estimates beat reservation"
                  : "UNEXPECTED");
  return 0;
}
